//! Workspace **call graph** for the interprocedural rules (R3v2, R4v2,
//! R6v2).
//!
//! Built over the item trees of every scanned file ([`Unit`]), the
//! graph resolves calls by crate-qualified name with a deliberate
//! method-call over-approximation (`.name(...)` edges to *every*
//! workspace method of that name). Over-approximation is the safe
//! direction for the reachability rules: it can only make more sites
//! reachable, never hide one.
//!
//! Resolution strategy (see DESIGN.md § Call-graph IR):
//!
//! - **Bare calls** `name(...)` — same file, else same crate, else any
//!   workspace free fn of that name (covers `use`-imported calls).
//! - **Path calls** `a::b::name(...)` — the head segment picks the
//!   crate (`rsm_core` → `core`; `crate`/`self`/`super` → the caller's
//!   crate; `Self` → the caller's impl type; `std`/`core`/`alloc` →
//!   external, no edge); remaining segments must all appear in the
//!   candidate's module/impl path.
//! - **Method calls** `.name(...)` — every workspace method named
//!   `name`, in any crate.
//! - Unresolvable names (std and vendored-dep calls) produce no edge.
//!
//! Each node also records its **violation sites** (panic, nondet,
//! materialization); the rule layer combines them with reachability.

use std::collections::VecDeque;

use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{parse_items, FnItem};
use crate::rules::{mark_test_spans, FileClass};

/// Impl-type names whose methods are matrix-free entry fronts for
/// rule R6v2 (transitive materialization).
pub const FRONT_TYPES: [&str; 2] = ["LarConfig", "LassoCdConfig"];

/// Function names that are matrix-free entry fronts for rule R6v2.
pub const FRONT_FNS: [&str; 3] = ["cross_validate", "cross_validate_source", "fit"];

/// Function names that are hot-path kernel entry points for the perf
/// rules R10–R12 (ROADMAP item 1: the streaming correlate / column
/// evaluation inner loops, plus the session-refactor hot paths — the
/// rank-1 factor downdates and the per-batch delta fold).
pub const KERNEL_FNS: [&str; 8] = [
    "correlate",
    "column_block_into",
    "columns_into",
    "column_sq_norms",
    "gram_active",
    // PR 8 incremental sessions: Givens downdates run O(p²) per lasso
    // drop / OMP deselect, and the delta fold runs once per sample
    // batch on the pipeline's consumer side.
    "drop_column",
    "remove_column",
    "apply_delta",
];

/// Files whose every non-test fn is a kernel entry point (the dense
/// vector primitives and the Hermite evaluation the kernels sit on).
pub const KERNEL_FILES: [&str; 2] = ["vec_ops.rs", "hermite.rs"];

/// One parsed file: source tokens plus the recovered item tree. The
/// whole workspace is parsed into units first; the call graph and the
/// rule passes then run over the full set.
#[derive(Debug)]
pub struct Unit {
    /// Workspace-relative path (diagnostic label).
    pub rel: String,
    /// Crate/test classification.
    pub class: FileClass,
    /// Full token stream (comments included — the suppression parser
    /// needs them).
    pub tokens: Vec<Token>,
    /// Function items parsed out of `tokens`.
    pub items: Vec<FnItem>,
    /// The file's source text. Token spans are byte ranges into this —
    /// the perf rules slice it to synthesize machine-applicable fixes.
    pub src: String,
}

impl Unit {
    /// Lexes and item-parses one file.
    pub fn new(rel: String, src: &str, class: FileClass) -> Unit {
        let tokens = lex(src);
        let items = parse_items(&tokens);
        Unit {
            rel,
            class,
            tokens,
            items,
            src: src.to_string(),
        }
    }
}

/// A violation site inside one function body (or at module scope).
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// Short human label (`unwrap()`, `env::var`, `design_matrix()`).
    pub detail: String,
    /// True for `env::*` reads — the only site kind the `RSM_THREADS`
    /// shim sanctions.
    pub env: bool,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site in the caller.
    pub line: u32,
}

/// One call-graph node: a function item, or the per-file module-scope
/// pseudo-node that holds top-level sites (`use` lines, const
/// initializers) so file-level violations keep firing.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable display key: `crate::mods::Type::name`.
    pub key: String,
    /// Bare function name (`(module)` for the pseudo-node).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword (1 for module scope).
    pub line: u32,
    /// Index into the unit slice the graph was built from.
    pub unit: usize,
    /// Crate name from the file's [`FileClass`].
    pub crate_name: Option<String>,
    /// File-module path + inline mod/impl path + name.
    pub segments: Vec<String>,
    /// Reachability root for R3v2/R4v2: an externally visible (`pub`
    /// or trait-surface) non-test fn, or a production file's module
    /// scope.
    pub is_entry: bool,
    /// Reachability root for R6v2 (matrix-free front).
    pub is_front: bool,
    /// Reachability root for the perf rules R10–R12: a hot-path kernel
    /// entry point (`correlate`/`column_block_into`/`columns_into`/
    /// `column_sq_norms` by name, or any fn defined in `vec_ops.rs` /
    /// `hermite.rs`). Non-test only.
    pub is_kernel: bool,
    /// Test code (`#[test]`, `#[cfg(test)]`, or a tests/ file).
    pub is_test: bool,
    /// Defined in an `impl`/`trait` block.
    pub is_method: bool,
    /// The per-file module-scope pseudo-node.
    pub module_scope: bool,
    /// The sanctioned `RSM_THREADS` shim: a `crates/runtime` fn whose
    /// body mentions the `RSM_THREADS` literal. Its env reads are the
    /// one place ambient state may enter.
    pub shim: bool,
    /// Outgoing edges, sorted by (callee key, line), deduped by callee.
    pub calls: Vec<Call>,
    /// `unwrap()` / `expect()` / `panic!` sites.
    pub panic_sites: Vec<Site>,
    /// Wall-clock / thread-identity / env sites.
    pub nondet_sites: Vec<Site>,
    /// `design_matrix(...)` call sites.
    pub mat_sites: Vec<Site>,
}

/// How a node is reached from the root set of a BFS.
#[derive(Debug, Clone, Copy)]
pub enum Reach {
    /// Not reachable.
    No,
    /// A root itself.
    Entry,
    /// Reached through `caller`'s call at `line` (shortest path).
    Via {
        /// Caller node index.
        caller: usize,
        /// Call-site line in the caller.
        line: u32,
    },
}

impl Reach {
    /// True for `Entry` or `Via`.
    pub fn yes(self) -> bool {
        !matches!(self, Reach::No)
    }
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes; function nodes follow their file's module node.
    pub nodes: Vec<Node>,
}

/// What a scanned call site looked like syntactically.
enum CallRef {
    Bare(String),
    Path(Vec<String>),
    Method(String),
}

impl CallGraph {
    /// Builds the graph over the full unit set.
    pub fn build(units: &[Unit]) -> CallGraph {
        let mut g = CallGraph::default();
        // Pass 1: nodes.
        for (ui, unit) in units.iter().enumerate() {
            let file_mods = file_mod_segments(&unit.rel);
            let crate_label = unit
                .class
                .crate_name
                .clone()
                .unwrap_or_else(|| unit.rel.clone());
            g.nodes.push(Node {
                key: format!("{}::(module)", unit.rel),
                name: "(module)".into(),
                file: unit.rel.clone(),
                line: 1,
                unit: ui,
                crate_name: unit.class.crate_name.clone(),
                segments: vec!["(module)".into()],
                is_entry: !unit.class.is_test_file,
                is_front: false,
                is_kernel: false,
                is_test: unit.class.is_test_file,
                is_method: false,
                module_scope: true,
                shim: false,
                calls: Vec::new(),
                panic_sites: Vec::new(),
                nondet_sites: Vec::new(),
                mat_sites: Vec::new(),
            });
            for item in &unit.items {
                let mut segments = file_mods.clone();
                segments.extend(item.path.iter().cloned());
                segments.push(item.name.clone());
                let is_test = item.is_test || unit.class.is_test_file;
                let impl_type = item.path.last().map(String::as_str);
                let is_front = !is_test
                    && (FRONT_FNS.contains(&item.name.as_str())
                        || (item.is_method && impl_type.is_some_and(|t| FRONT_TYPES.contains(&t))));
                let in_kernel_file = KERNEL_FILES
                    .iter()
                    .any(|f| unit.rel.ends_with(f) && unit.class.is_lib_crate());
                let is_kernel = !is_test
                    && unit.class.is_lib_crate()
                    && (KERNEL_FNS.contains(&item.name.as_str()) || in_kernel_file);
                g.nodes.push(Node {
                    key: format!("{crate_label}::{}", segments.join("::")),
                    name: item.name.clone(),
                    file: unit.rel.clone(),
                    line: item.line,
                    unit: ui,
                    crate_name: unit.class.crate_name.clone(),
                    segments,
                    is_entry: !is_test && item.is_entry_visible(),
                    is_front,
                    is_kernel,
                    is_test,
                    is_method: item.is_method,
                    module_scope: false,
                    shim: false,
                    calls: Vec::new(),
                    panic_sites: Vec::new(),
                    nondet_sites: Vec::new(),
                    mat_sites: Vec::new(),
                });
            }
        }
        // Index from (unit, item ordinal) to node: module node first,
        // then items in parse order.
        let mut unit_first_item = vec![0usize; units.len()];
        {
            let mut next = 0usize;
            for (ui, unit) in units.iter().enumerate() {
                unit_first_item[ui] = next + 1; // skip module node
                next += 1 + unit.items.len();
            }
        }
        // Pass 2: body scans + resolution.
        let mut edges: Vec<Vec<Call>> = vec![Vec::new(); g.nodes.len()];
        for (ui, unit) in units.iter().enumerate() {
            let code: Vec<(usize, &Token)> = unit
                .tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
                .collect();
            let mut covered = vec![false; unit.tokens.len()];
            for (oi, item) in unit.items.iter().enumerate() {
                let Some((start, end)) = item.body else {
                    continue;
                };
                for c in covered.iter_mut().take(end).skip(start) {
                    *c = true;
                }
                let ni = unit_first_item[ui] + oi;
                let lo = code.partition_point(|&(o, _)| o < start);
                let hi = code.partition_point(|&(o, _)| o < end);
                let scan = scan_body(&code[lo..hi]);
                let crate_ok =
                    unit.class.crate_name.as_deref() == Some("runtime") || unit.class.explicit;
                g.nodes[ni].shim = crate_ok && scan.mentions_rsm_threads;
                g.nodes[ni].panic_sites = scan.panic_sites;
                g.nodes[ni].nondet_sites = scan.nondet_sites;
                g.nodes[ni].mat_sites = scan.mat_sites;
                for (cref, line) in scan.calls {
                    for callee in g.resolve(ni, &cref) {
                        edges[ni].push(Call { callee, line });
                    }
                }
            }
            // Module scope: sites only (top-level Rust code has no
            // executable calls outside const initializers, which we
            // accept as a documented false-negative class).
            let in_test = mark_test_spans(&unit.tokens);
            let module_code: Vec<(usize, &Token)> = code
                .iter()
                .filter(|&&(o, _)| !covered[o] && !in_test[o])
                .copied()
                .collect();
            let scan = scan_body(&module_code);
            let mi = unit_first_item[ui] - 1;
            g.nodes[mi].panic_sites = scan.panic_sites;
            g.nodes[mi].nondet_sites = scan.nondet_sites;
            g.nodes[mi].mat_sites = scan.mat_sites;
        }
        for (ni, mut calls) in edges.into_iter().enumerate() {
            calls.sort_by(|a, b| {
                g.nodes[a.callee]
                    .key
                    .cmp(&g.nodes[b.callee].key)
                    .then(a.line.cmp(&b.line))
            });
            calls.dedup_by_key(|c| c.callee);
            g.nodes[ni].calls = calls;
        }
        g
    }

    /// Resolves one syntactic call in `caller` to candidate node
    /// indices. Empty for external (std/vendored) calls.
    fn resolve(&self, caller: usize, cref: &CallRef) -> Vec<usize> {
        let nodes = &self.nodes;
        let fn_nodes = || nodes.iter().enumerate().filter(|(_, n)| !n.module_scope);
        match cref {
            CallRef::Method(name) => fn_nodes()
                .filter(|(_, n)| n.is_method && n.name == *name)
                .map(|(i, _)| i)
                .collect(),
            CallRef::Bare(name) => {
                let cands: Vec<usize> = fn_nodes()
                    .filter(|(_, n)| !n.is_method && n.name == *name)
                    .map(|(i, _)| i)
                    .collect();
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| nodes[i].unit == nodes[caller].unit)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        nodes[i].crate_name.is_some()
                            && nodes[i].crate_name == nodes[caller].crate_name
                    })
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                cands
            }
            CallRef::Path(segs) => {
                let name = segs.last().cloned().unwrap_or_default();
                let mut quals: Vec<String> = segs[..segs.len() - 1].to_vec();
                let mut crate_filter: Option<String> = None;
                let mut require_free = false;
                if let Some(head) = quals.first().cloned() {
                    match head.as_str() {
                        // `core` the std facade shadows our `core`
                        // crate in paths; imports of the workspace
                        // crate are spelled `rsm_core`.
                        "std" | "core" | "alloc" => return Vec::new(),
                        "crate" | "self" | "super" => {
                            crate_filter = nodes[caller].crate_name.clone();
                            while quals
                                .first()
                                .is_some_and(|q| matches!(q.as_str(), "crate" | "self" | "super"))
                            {
                                quals.remove(0);
                            }
                        }
                        "Self" => {
                            let ty = nodes[caller]
                                .segments
                                .len()
                                .checked_sub(2)
                                .and_then(|i| nodes[caller].segments.get(i))
                                .cloned();
                            quals.remove(0);
                            if let Some(ty) = ty {
                                quals.insert(0, ty);
                            }
                            crate_filter = nodes[caller].crate_name.clone();
                        }
                        h if h.starts_with("rsm_") => {
                            crate_filter = Some(h["rsm_".len()..].replace('_', "-"));
                            quals.remove(0);
                        }
                        "sparse_rsm" => {
                            crate_filter = Some("sparse-rsm".into());
                            quals.remove(0);
                        }
                        _ => {}
                    }
                }
                if quals.is_empty() {
                    require_free = true;
                }
                fn_nodes()
                    .filter(|(_, n)| n.name == name)
                    .filter(|(_, n)| !(require_free && n.is_method))
                    .filter(|(_, n)| crate_filter.is_none() || n.crate_name == crate_filter)
                    .filter(|(_, n)| {
                        let qpath = &n.segments[..n.segments.len() - 1];
                        quals.iter().all(|q| qpath.iter().any(|s| s == q))
                    })
                    .map(|(i, _)| i)
                    .collect()
            }
        }
    }

    /// Multi-source BFS over call edges. Roots are taken in key order
    /// and adjacency lists are key-sorted, so the parent pointers (and
    /// therefore every printed call chain) are deterministic.
    pub fn reach(&self, root: impl Fn(&Node) -> bool) -> Vec<Reach> {
        let mut roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| root(&self.nodes[i]))
            .collect();
        roots.sort_by(|&a, &b| {
            self.nodes[a]
                .key
                .cmp(&self.nodes[b].key)
                .then(self.nodes[a].line.cmp(&self.nodes[b].line))
        });
        let mut reach = vec![Reach::No; self.nodes.len()];
        let mut q = VecDeque::new();
        for r in roots {
            if !reach[r].yes() {
                reach[r] = Reach::Entry;
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for call in &self.nodes[u].calls {
                if !reach[call.callee].yes() {
                    reach[call.callee] = Reach::Via {
                        caller: u,
                        line: call.line,
                    };
                    q.push_back(call.callee);
                }
            }
        }
        reach
    }

    /// The shortest root→…→`node` call chain under `reach`, one frame
    /// per element (`key (file:line)`), root first. Empty if the node
    /// is unreachable.
    pub fn chain(&self, reach: &[Reach], node: usize) -> Vec<String> {
        let mut frames = Vec::new();
        let mut cur = node;
        loop {
            let n = &self.nodes[cur];
            match reach[cur] {
                Reach::No => return Vec::new(),
                Reach::Entry => {
                    frames.push(format!("{} ({}:{})", n.key, n.file, n.line));
                    break;
                }
                Reach::Via { caller, line } => {
                    frames.push(format!("{} ({}:{})", n.key, n.file, line));
                    cur = caller;
                }
            }
        }
        frames.reverse();
        frames
    }

    /// Serializes the graph to a deterministic text snapshot: nodes in
    /// key order with their flags, edges, and sites.
    pub fn snapshot(&self) -> String {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.nodes[a]
                .key
                .cmp(&self.nodes[b].key)
                .then(self.nodes[a].file.cmp(&self.nodes[b].file))
                .then(self.nodes[a].line.cmp(&self.nodes[b].line))
        });
        let edges: usize = self.nodes.iter().map(|n| n.calls.len()).sum();
        let mut out = format!(
            "# rsm-lint call graph v2 — {} nodes, {edges} edges\n",
            self.nodes.len()
        );
        for i in order {
            let n = &self.nodes[i];
            let mut flags = Vec::new();
            for (on, label) in [
                (n.is_entry, "entry"),
                (n.is_front, "front"),
                (n.is_kernel, "kernel"),
                (n.is_test, "test"),
                (n.is_method, "method"),
                (n.shim, "shim"),
            ] {
                if on {
                    flags.push(label);
                }
            }
            let flags = if flags.is_empty() {
                String::new()
            } else {
                format!(" [{}]", flags.join(","))
            };
            out.push_str(&format!("node {}{flags} ({}:{})\n", n.key, n.file, n.line));
            for c in &n.calls {
                out.push_str(&format!("  -> {} @{}\n", self.nodes[c.callee].key, c.line));
            }
            for (kind, sites) in [
                ("panic", &n.panic_sites),
                ("nondet", &n.nondet_sites),
                ("materialize", &n.mat_sites),
            ] {
                for s in sites {
                    out.push_str(&format!("  {kind} {} @{}\n", s.detail, s.line));
                }
            }
        }
        out
    }
}

/// Sites and syntactic calls found in one body's code tokens.
struct BodyScan {
    calls: Vec<(CallRef, u32)>,
    panic_sites: Vec<Site>,
    nondet_sites: Vec<Site>,
    mat_sites: Vec<Site>,
    mentions_rsm_threads: bool,
}

/// Scans a comment-free token slice (with original indices) for call
/// references and violation sites.
fn scan_body(code: &[(usize, &Token)]) -> BodyScan {
    let mut scan = BodyScan {
        calls: Vec::new(),
        panic_sites: Vec::new(),
        nondet_sites: Vec::new(),
        mat_sites: Vec::new(),
        mentions_rsm_threads: false,
    };
    let at = |j: isize| -> Option<&Token> { code.get(usize::try_from(j).ok()?).map(|&(_, t)| t) };
    for (ci, &(_, tok)) in code.iter().enumerate() {
        let i = ci as isize;
        if let TokenKind::Literal(text) = &tok.kind {
            if text.contains("RSM_THREADS") {
                scan.mentions_rsm_threads = true;
            }
            continue;
        }
        // Panic sites: `.unwrap()` / `.expect(` / `panic!`.
        if tok.is_punct(".") {
            if let Some(name @ ("unwrap" | "expect")) = at(i + 1).and_then(Token::ident) {
                if at(i + 2).is_some_and(|t| t.is_punct("(")) {
                    scan.panic_sites.push(Site {
                        line: at(i + 1).map_or(tok.line, |t| t.line),
                        detail: format!("{name}()"),
                        env: false,
                    });
                }
            }
            continue;
        }
        let Some(ident) = tok.ident() else { continue };
        if ident == "panic" && at(i + 1).is_some_and(|t| t.is_punct("!")) {
            scan.panic_sites.push(Site {
                line: tok.line,
                detail: "panic!".into(),
                env: false,
            });
            continue;
        }
        // Nondeterminism sites (same patterns as the v1 lexical rule).
        if ident == "SystemTime" {
            scan.nondet_sites.push(Site {
                line: tok.line,
                detail: "SystemTime".into(),
                env: false,
            });
            continue;
        }
        if ident == "thread"
            && at(i + 1).is_some_and(|t| t.is_punct("::"))
            && at(i + 2).and_then(Token::ident) == Some("current")
        {
            scan.nondet_sites.push(Site {
                line: tok.line,
                detail: "thread::current()".into(),
                env: false,
            });
            continue;
        }
        if ident == "env" && at(i + 1).is_some_and(|t| t.is_punct("::")) {
            if let Some(f @ ("var" | "vars" | "var_os" | "set_var" | "remove_var")) =
                at(i + 2).and_then(Token::ident)
            {
                scan.nondet_sites.push(Site {
                    line: tok.line,
                    detail: format!("env::{f}"),
                    env: true,
                });
                continue;
            }
        }
        // Materialization sites: `design_matrix(` that is a call, not
        // the definition.
        if ident == "design_matrix"
            && at(i + 1).is_some_and(|t| t.is_punct("("))
            && at(i - 1).and_then(Token::ident) != Some("fn")
        {
            scan.mat_sites.push(Site {
                line: tok.line,
                detail: "design_matrix()".into(),
                env: false,
            });
            // Fall through: it is also a call edge (to the definition,
            // which holds no sites of its own).
        }
        // Call references.
        if matches!(
            ident,
            "if" | "while" | "for" | "match" | "return" | "loop" | "fn"
        ) {
            continue;
        }
        if at(i - 1)
            .and_then(Token::ident)
            .is_some_and(|p| matches!(p, "fn" | "struct" | "enum" | "union" | "mod" | "trait"))
        {
            continue;
        }
        // The token after the (possibly turbofished) name must open a
        // call argument list.
        let mut after = i + 1;
        if at(after).is_some_and(|t| t.is_punct("::"))
            && at(after + 1).is_some_and(|t| t.is_punct("<"))
        {
            let mut depth = 0usize;
            let mut j = after + 1;
            loop {
                match at(j) {
                    Some(t) if t.is_punct("<") => depth += 1,
                    Some(t) if t.is_punct(">") => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            after = j + 1;
                            break;
                        }
                    }
                    Some(_) => {}
                    None => {
                        after = j;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !at(after).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        if at(i + 1).is_some_and(|t| t.is_punct("!")) {
            continue; // non-panic macro
        }
        // Gather the `::`-path backwards from the name.
        let mut segs = vec![ident.to_string()];
        let mut j = i;
        while at(j - 1).is_some_and(|t| t.is_punct("::")) {
            match at(j - 2).and_then(Token::ident) {
                Some(seg) => {
                    segs.insert(0, seg.to_string());
                    j -= 2;
                }
                None => break, // `<T as Trait>::name` — keep what we have
            }
        }
        let line = tok.line;
        if at(j - 1).is_some_and(|t| t.is_punct(".")) && segs.len() == 1 {
            scan.calls.push((CallRef::Method(segs.remove(0)), line));
        } else if segs.len() > 1 {
            scan.calls.push((CallRef::Path(segs), line));
        } else {
            scan.calls.push((CallRef::Bare(segs.remove(0)), line));
        }
    }
    scan
}

/// Fn-qualified key (graph-node format, `crate::mods::Type::name`) of
/// the **innermost** function item in `unit` whose span covers `line`
/// — the stable identity the baseline ratchet uses for findings.
/// `None` for module-scope lines outside every function.
pub fn fn_key_at(unit: &Unit, line: u32) -> Option<String> {
    let crate_label = unit
        .class
        .crate_name
        .clone()
        .unwrap_or_else(|| unit.rel.clone());
    let file_mods = file_mod_segments(&unit.rel);
    let mut best: Option<(u32, &FnItem)> = None;
    for item in &unit.items {
        let Some((start, end)) = item.body else {
            continue;
        };
        let lo = item.line.min(unit.tokens[start].line);
        let hi = unit.tokens[end.saturating_sub(1)].line;
        if line < lo || line > hi {
            continue;
        }
        let span = hi - lo;
        if best.is_none_or(|(s, _)| span < s) {
            best = Some((span, item));
        }
    }
    best.map(|(_, item)| {
        let mut segments = file_mods.clone();
        segments.extend(item.path.iter().cloned());
        segments.push(item.name.clone());
        format!("{crate_label}::{}", segments.join("::"))
    })
}

/// Derives the file-level module path from a workspace-relative path:
/// `crates/core/src/a/b.rs` → `["a", "b"]`; `lib.rs`/`main.rs`/`mod.rs`
/// contribute nothing; files outside `src/` (tests, fixtures) have an
/// empty module path.
fn file_mod_segments(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let Some(src_at) = parts.iter().position(|p| *p == "src") else {
        return Vec::new();
    };
    let mut segs: Vec<String> = Vec::new();
    for (k, part) in parts[src_at + 1..].iter().enumerate() {
        let last = k == parts.len() - src_at - 2;
        let name = if last {
            part.strip_suffix(".rs").unwrap_or(part)
        } else {
            part
        };
        if matches!(name, "lib" | "main" | "mod") {
            continue;
        }
        segs.push(name.to_string());
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(rel: &str, src: &str) -> Unit {
        Unit::new(rel.into(), src, FileClass::from_path(rel))
    }

    fn find<'g>(g: &'g CallGraph, name: &str) -> (usize, &'g Node) {
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn bare_call_prefers_same_file_then_same_crate() {
        let units = vec![
            unit(
                "crates/core/src/a.rs",
                "pub fn entry() { helper(); }\nfn helper() {}\n",
            ),
            unit("crates/core/src/b.rs", "fn helper() {}\n"),
            unit("crates/basis/src/lib.rs", "pub fn helper() {}\n"),
        ];
        let g = CallGraph::build(&units);
        let (_, entry) = find(&g, "entry");
        assert_eq!(entry.calls.len(), 1);
        let callee = &g.nodes[entry.calls[0].callee];
        assert_eq!(callee.file, "crates/core/src/a.rs");
    }

    #[test]
    fn path_call_resolves_crate_and_type() {
        let units = vec![
            unit(
                "crates/cli/src/lib.rs",
                "pub fn run() { rsm_core::solver::fit(); Matrix::new(); }\n",
            ),
            unit("crates/core/src/solver.rs", "pub fn fit() {}\n"),
            unit("crates/core/src/other.rs", "pub fn fit() {}\n"),
            unit(
                "crates/linalg/src/dense.rs",
                "impl Matrix { pub fn new() {} }\n",
            ),
        ];
        let g = CallGraph::build(&units);
        let (_, run) = find(&g, "run");
        let callees: Vec<&str> = run
            .calls
            .iter()
            .map(|c| g.nodes[c.callee].key.as_str())
            .collect();
        // `solver::` qualifier rules out core::other::fit.
        assert_eq!(
            callees,
            vec!["core::solver::fit", "linalg::dense::Matrix::new"]
        );
    }

    #[test]
    fn std_paths_produce_no_edges() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "pub fn f() { std::mem::take(&mut 3); }\nfn take() {}\n",
        )];
        let g = CallGraph::build(&units);
        let (_, f) = find(&g, "f");
        assert!(
            f.calls.is_empty(),
            "std::mem::take must not edge to local take"
        );
    }

    #[test]
    fn method_calls_edge_to_all_methods_of_that_name() {
        let units = vec![
            unit(
                "crates/core/src/a.rs",
                "pub fn go(x: &dyn S) { x.atom(0); }\n",
            ),
            unit(
                "crates/basis/src/s1.rs",
                "impl S for A { fn atom(&self, j: usize) {} }\n",
            ),
            unit(
                "crates/circuits/src/s2.rs",
                "impl S for B { fn atom(&self, j: usize) {} }\n",
            ),
        ];
        let g = CallGraph::build(&units);
        let (_, go) = find(&g, "go");
        assert_eq!(go.calls.len(), 2, "method approximation fans out");
    }

    #[test]
    fn self_paths_resolve_to_impl_type() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "impl Cfg {\n  pub fn fit(&self) { Self::check(); }\n  fn check() {}\n}\n",
        )];
        let g = CallGraph::build(&units);
        let (_, fit) = find(&g, "fit");
        assert_eq!(fit.calls.len(), 1);
        assert_eq!(g.nodes[fit.calls[0].callee].name, "check");
    }

    #[test]
    fn reachability_and_chain_are_deterministic() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "pub fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() { let x: Option<u8> = None; x.unwrap(); }\nfn orphan() { let x: Option<u8> = None; x.unwrap(); }\n",
        )];
        let g = CallGraph::build(&units);
        let reach = g.reach(|n| n.is_entry && !n.module_scope);
        let (di, deep) = find(&g, "deep");
        assert!(reach[di].yes());
        assert_eq!(deep.panic_sites.len(), 1);
        let chain = g.chain(&reach, di);
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("core::a::entry "), "{chain:?}");
        assert!(chain[2].starts_with("core::a::deep "), "{chain:?}");
        let (oi, _) = find(&g, "orphan");
        assert!(!reach[oi].yes(), "uncalled private fn is unreachable");
    }

    #[test]
    fn shim_is_recognized_in_runtime_crate_only() {
        let src =
            "pub fn threads() -> usize {\n  match std::env::var(\"RSM_THREADS\") { _ => 1 }\n}\n";
        let g = CallGraph::build(&[unit("crates/runtime/src/lib.rs", src)]);
        assert!(find(&g, "threads").1.shim);
        let g = CallGraph::build(&[unit("crates/core/src/lib.rs", src)]);
        assert!(!find(&g, "threads").1.shim, "only crates/runtime may shim");
    }

    #[test]
    fn module_scope_holds_top_level_sites() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "use std::time::SystemTime;\npub fn f() {}\n",
        )];
        let g = CallGraph::build(&units);
        let m = &g.nodes[0];
        assert!(m.module_scope && m.is_entry);
        assert_eq!(m.nondet_sites.len(), 1);
        // The fn body holds none.
        assert!(find(&g, "f").1.panic_sites.is_empty());
    }

    #[test]
    fn fronts_are_flagged() {
        let units = vec![unit(
            "crates/core/src/select.rs",
            "pub fn cross_validate() {}\nimpl LarConfig { pub fn fit(&self) {} }\npub fn other() {}\n",
        )];
        let g = CallGraph::build(&units);
        assert!(find(&g, "cross_validate").1.is_front);
        assert!(find(&g, "fit").1.is_front);
        assert!(!find(&g, "other").1.is_front);
    }

    #[test]
    fn snapshot_is_stable_and_ordered() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "pub fn b() { a(); }\nfn a() {}\n",
        )];
        let g = CallGraph::build(&units);
        let s1 = g.snapshot();
        let s2 = CallGraph::build(&units).snapshot();
        assert_eq!(s1, s2);
        assert!(s1.starts_with("# rsm-lint call graph v2"));
        let a_at = s1.find("node core::a::a ").expect("a");
        let b_at = s1.find("node core::a::b ").expect("b");
        assert!(a_at < b_at, "key-sorted");
    }

    #[test]
    fn turbofish_calls_still_resolve() {
        let units = vec![unit(
            "crates/core/src/a.rs",
            "pub fn f() { helper::<f64>(); }\nfn helper<T>() {}\n",
        )];
        let g = CallGraph::build(&units);
        assert_eq!(find(&g, "f").1.calls.len(), 1);
    }
}
