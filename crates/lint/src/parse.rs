//! A recursive-descent **item parser** on top of [`crate::lexer`].
//!
//! This is the layer that turns rsm-lint from a per-line token matcher
//! into a flow-aware analysis: it recovers the *item tree* of a file —
//! functions (with their bodies as token ranges), `impl`/`trait`
//! blocks, nested modules, visibility, and `#[cfg(test)]`/`#[test]`
//! gating — without building a full AST. Expressions stay opaque token
//! slices; the call-graph layer ([`crate::graph`]) scans them for call
//! and violation sites.
//!
//! Deliberate approximations (documented in DESIGN.md § Call-graph IR):
//!
//! - Nested `fn` items are folded into their enclosing function's body
//!   (their calls are attributed to the outer function).
//! - Methods of `impl Trait for Type` blocks and of `trait` blocks are
//!   treated as **public**: they are callable through the trait object
//!   or bound even when the `fn` itself carries no `pub`.
//! - `pub(crate)`/`pub(super)` count as restricted (not externally
//!   reachable entry points), but remain reachable *through* public
//!   callers like any private function.

use crate::lexer::{Token, TokenKind};

/// Item visibility as written (trait-context publicness is a separate
/// flag on [`FnItem`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Bare `pub`.
    Public,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One function item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `mod`/`impl`/`trait` name segments, outermost first
    /// (file-level module segments are prepended by the graph layer).
    pub path: Vec<String>,
    /// Written visibility of the `fn` itself.
    pub vis: Visibility,
    /// Inside `#[cfg(test)]`-gated code or carrying `#[test]`.
    pub is_test: bool,
    /// Defined inside an `impl` or `trait` block.
    pub is_method: bool,
    /// Inside `impl Trait for Type` or a `trait` declaration — the
    /// function is part of a trait surface and treated as public.
    pub in_trait: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the body's brace block in the
    /// **original** (comment-inclusive) token stream; `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Whether the function is an externally reachable entry point:
    /// written `pub`, or part of a trait surface.
    pub fn is_entry_visible(&self) -> bool {
        self.vis == Visibility::Public || self.in_trait
    }
}

/// Parses the item tree of one file's token stream.
pub fn parse_items(tokens: &[Token]) -> Vec<FnItem> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let mut p = Parser {
        code,
        out: Vec::new(),
    };
    let mut i = 0usize;
    p.scope(&mut i, &mut Vec::new(), false, None);
    p.out
}

/// Scans the attribute starting at the `[` **code-token** index of
/// `code`; returns the index one past the matching `]` and whether the
/// attribute gates test-only code (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, ..))]` — but not `#[cfg(not(test))]` and not
/// `#[cfg_attr(test, ..)]`).
pub(crate) fn scan_attribute_code(code: &[(usize, &Token)], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < code.len() {
        let t = code[j].1;
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                j += 1;
                break;
            }
        } else if let Some(id) = t.ident() {
            idents.push(id);
        }
        j += 1;
    }
    let is_test = idents == ["test"]
        || (idents.contains(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not")
            && !idents.contains(&"cfg_attr"));
    (j, is_test)
}

/// Context of the innermost `impl`/`trait` block.
#[derive(Debug, Clone)]
struct ImplCtx {
    type_name: String,
    trait_surface: bool,
}

struct Parser<'a> {
    /// Comment-free tokens paired with their original indices.
    code: Vec<(usize, &'a Token)>,
    out: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.code.get(i).map(|&(_, t)| t)
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        self.tok(i).and_then(Token::ident)
    }

    /// Skips a balanced `<...>` group starting at index `i` (which must
    /// point at `<`); returns the index one past the matching `>`.
    fn skip_angles(&self, mut i: usize) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.tok(i) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            } else if t.is_punct("(") || t.is_punct("{") {
                // Malformed / const-generic expression; bail out rather
                // than swallowing the file.
                return i;
            }
            i += 1;
        }
        i
    }

    /// Skips a balanced delimiter group starting at index `i` (which
    /// must point at `open`); returns the index one past the match.
    fn skip_group(&self, mut i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.tok(i) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Parses items until the scope's closing `}` (consumed) or EOF.
    fn scope(
        &mut self,
        i: &mut usize,
        path: &mut Vec<String>,
        in_test: bool,
        impl_ctx: Option<&ImplCtx>,
    ) {
        let mut pending_test = false;
        let mut pending_vis = Visibility::Private;
        while let Some(t) = self.tok(*i) {
            if t.is_punct("}") {
                *i += 1;
                return;
            }
            if t.is_punct("#") && self.tok(*i + 1).is_some_and(|t| t.is_punct("[")) {
                let (end, is_test) = scan_attribute_code(&self.code, *i + 1);
                pending_test |= is_test;
                *i = end;
                continue;
            }
            match t.ident() {
                Some("pub") => {
                    *i += 1;
                    if self.tok(*i).is_some_and(|t| t.is_punct("(")) {
                        *i = self.skip_group(*i, "(", ")");
                        pending_vis = Visibility::Restricted;
                    } else {
                        pending_vis = Visibility::Public;
                    }
                    continue;
                }
                Some("mod") if self.ident_at(*i + 1).is_some() => {
                    let name = self.ident_at(*i + 1).unwrap_or_default().to_string();
                    *i += 2;
                    if self.tok(*i).is_some_and(|t| t.is_punct("{")) {
                        *i += 1;
                        path.push(name);
                        self.scope(i, path, in_test || pending_test, None);
                        path.pop();
                    } else if self.tok(*i).is_some_and(|t| t.is_punct(";")) {
                        *i += 1;
                    }
                    pending_test = false;
                    pending_vis = Visibility::Private;
                    continue;
                }
                Some("impl") => {
                    let item_test = in_test || pending_test;
                    pending_test = false;
                    pending_vis = Visibility::Private;
                    if let Some(ctx) = self.impl_header(i) {
                        path.push(ctx.type_name.clone());
                        self.scope(i, path, item_test, Some(&ctx));
                        path.pop();
                    }
                    continue;
                }
                Some("trait") if self.ident_at(*i + 1).is_some() => {
                    let name = self.ident_at(*i + 1).unwrap_or_default().to_string();
                    let item_test = in_test || pending_test;
                    pending_test = false;
                    pending_vis = Visibility::Private;
                    *i += 2;
                    // Skip bounds/generics/where clause up to the body.
                    while let Some(t) = self.tok(*i) {
                        if t.is_punct("{") || t.is_punct(";") {
                            break;
                        }
                        if t.is_punct("<") {
                            *i = self.skip_angles(*i);
                        } else if t.is_punct("(") {
                            *i = self.skip_group(*i, "(", ")");
                        } else {
                            *i += 1;
                        }
                    }
                    if self.tok(*i).is_some_and(|t| t.is_punct("{")) {
                        *i += 1;
                        let ctx = ImplCtx {
                            type_name: name.clone(),
                            trait_surface: true,
                        };
                        path.push(name);
                        self.scope(i, path, item_test, Some(&ctx));
                        path.pop();
                    } else if self.tok(*i).is_some_and(|t| t.is_punct(";")) {
                        *i += 1;
                    }
                    continue;
                }
                Some("fn") if self.ident_at(*i + 1).is_some() => {
                    self.fn_item(i, path, pending_vis, in_test || pending_test, impl_ctx);
                    pending_test = false;
                    pending_vis = Visibility::Private;
                    continue;
                }
                Some("macro_rules") => {
                    // `macro_rules! name { ... }` — opaque; skip it so
                    // template tokens don't masquerade as items.
                    *i += 1;
                    while let Some(t) = self.tok(*i) {
                        if t.is_punct("{") {
                            *i = self.skip_group(*i, "{", "}");
                            break;
                        }
                        if t.is_punct(";") {
                            *i += 1;
                            break;
                        }
                        *i += 1;
                    }
                    pending_test = false;
                    pending_vis = Visibility::Private;
                    continue;
                }
                _ => {}
            }
            if t.is_punct("{") {
                // struct/enum/union bodies, const initializers, ...:
                // recurse generically (no fn items hide in well-formed
                // ones, and recursion keeps brace tracking exact).
                *i += 1;
                self.scope(i, path, in_test || pending_test, impl_ctx);
                pending_test = false;
                pending_vis = Visibility::Private;
                continue;
            }
            if t.is_punct(";") {
                pending_test = false;
                pending_vis = Visibility::Private;
            }
            *i += 1;
        }
    }

    /// Parses an `impl` header starting at the `impl` token; leaves `i`
    /// one past the opening `{` and returns the context, or `None` for
    /// body-less forms.
    fn impl_header(&mut self, i: &mut usize) -> Option<ImplCtx> {
        *i += 1; // `impl`
        if self.tok(*i).is_some_and(|t| t.is_punct("<")) {
            *i = self.skip_angles(*i);
        }
        let mut ty: Vec<String> = Vec::new();
        let mut trait_surface = false;
        while let Some(t) = self.tok(*i) {
            if t.is_punct("{") {
                *i += 1;
                let type_name = ty.last().cloned().unwrap_or_else(|| "?".to_string());
                return Some(ImplCtx {
                    type_name,
                    trait_surface,
                });
            }
            if t.is_punct(";") {
                *i += 1;
                return None;
            }
            match t.ident() {
                Some("for") if !self.tok(*i + 1).is_some_and(|t| t.is_punct("<")) => {
                    // `impl Trait for Type` — the trait path parsed so
                    // far is discarded; the self type follows. (A
                    // `for<'a>` HRTB keeps the current path.)
                    trait_surface = true;
                    ty.clear();
                    *i += 1;
                    continue;
                }
                Some("where") => {
                    // Scan the where clause up to the body.
                    while let Some(t) = self.tok(*i) {
                        if t.is_punct("{") || t.is_punct(";") {
                            break;
                        }
                        if t.is_punct("<") {
                            *i = self.skip_angles(*i);
                        } else if t.is_punct("(") {
                            *i = self.skip_group(*i, "(", ")");
                        } else {
                            *i += 1;
                        }
                    }
                    continue;
                }
                Some(id) => {
                    ty.push(id.to_string());
                    *i += 1;
                    continue;
                }
                None => {}
            }
            if t.is_punct("<") {
                *i = self.skip_angles(*i);
            } else if t.is_punct("(") {
                *i = self.skip_group(*i, "(", ")");
            } else {
                *i += 1;
            }
        }
        None
    }

    /// Parses one `fn` item starting at the `fn` token.
    fn fn_item(
        &mut self,
        i: &mut usize,
        path: &[String],
        vis: Visibility,
        is_test: bool,
        impl_ctx: Option<&ImplCtx>,
    ) {
        let line = self.tok(*i).map_or(0, |t| t.line);
        *i += 1; // `fn`
        let name = self.ident_at(*i).unwrap_or_default().to_string();
        *i += 1;
        if self.tok(*i).is_some_and(|t| t.is_punct("<")) {
            *i = self.skip_angles(*i);
        }
        if self.tok(*i).is_some_and(|t| t.is_punct("(")) {
            *i = self.skip_group(*i, "(", ")");
        }
        // Signature tail (return type, where clause) up to body or `;`.
        let mut body = None;
        while let Some(t) = self.tok(*i) {
            if t.is_punct("{") {
                let start_orig = self.code[*i].0;
                let after = self.skip_group(*i, "{", "}");
                let end_orig = self
                    .code
                    .get(after.saturating_sub(1))
                    .map_or(start_orig + 1, |&(o, _)| o + 1);
                body = Some((start_orig, end_orig));
                *i = after;
                break;
            }
            if t.is_punct(";") {
                *i += 1;
                break;
            }
            if t.is_punct("}") {
                break; // malformed; let the enclosing scope close
            }
            if t.is_punct("<") {
                *i = self.skip_angles(*i);
            } else if t.is_punct("(") {
                *i = self.skip_group(*i, "(", ")");
            } else {
                *i += 1;
            }
        }
        self.out.push(FnItem {
            name,
            path: path.to_vec(),
            vis,
            is_test,
            is_method: impl_ctx.is_some(),
            in_trait: impl_ctx.is_some_and(|c| c.trait_surface),
            line,
            body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn free_fns_with_visibility() {
        let fs = items("pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\n");
        let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(fs[0].vis, Visibility::Public);
        assert_eq!(fs[1].vis, Visibility::Private);
        assert_eq!(fs[2].vis, Visibility::Restricted);
        assert!(fs.iter().all(|f| !f.is_method && !f.is_test));
        assert!(fs.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn modules_nest_and_gate_tests() {
        let src = "mod outer {\n  pub fn f() {}\n  mod inner { fn g() {} }\n}\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n  fn helper() {}\n}\n";
        let fs = items(src);
        let f = fs.iter().find(|f| f.name == "f").expect("f");
        assert_eq!(f.path, vec!["outer"]);
        assert!(!f.is_test);
        let g = fs.iter().find(|f| f.name == "g").expect("g");
        assert_eq!(g.path, vec!["outer", "inner"]);
        // Everything inside the #[cfg(test)] mod is test code.
        assert!(fs.iter().find(|f| f.name == "t").expect("t").is_test);
        assert!(fs.iter().find(|f| f.name == "helper").expect("h").is_test);
    }

    #[test]
    fn bare_test_attribute_marks_fn() {
        let fs = items("#[test]\nfn t() {}\nfn prod() {}\n");
        assert!(fs[0].is_test);
        assert!(!fs[1].is_test);
    }

    #[test]
    fn inherent_impl_methods() {
        let src = "impl Matrix {\n  pub fn rows(&self) -> usize { self.r }\n  \
                   fn check(&self) {}\n}\n";
        let fs = items(src);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.is_method && !f.in_trait));
        assert_eq!(fs[0].path, vec!["Matrix"]);
        assert_eq!(fs[0].vis, Visibility::Public);
        assert!(fs[0].is_entry_visible());
        assert!(!fs[1].is_entry_visible());
    }

    #[test]
    fn trait_impl_methods_are_trait_surface() {
        let src = "impl<S: Clone> AtomSource for Cached<S> {\n  fn atom(&self, j: usize) {}\n}\n\
                   impl fmt::Display for Matrix {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n";
        let fs = items(src);
        assert_eq!(fs.len(), 2);
        assert!(fs[0].in_trait && fs[0].is_entry_visible());
        assert_eq!(fs[0].path, vec!["Cached"]);
        assert_eq!(fs[1].path, vec!["Matrix"]);
        assert!(fs[1].in_trait);
    }

    #[test]
    fn trait_decl_default_and_required_methods() {
        let src = "pub trait Source {\n  fn len(&self) -> usize;\n  \
                   fn is_empty(&self) -> bool { self.len() == 0 }\n}\n";
        let fs = items(src);
        assert_eq!(fs.len(), 2);
        assert!(fs[0].body.is_none(), "required method has no body");
        assert!(fs[1].body.is_some(), "default method has a body");
        assert!(fs.iter().all(|f| f.in_trait && f.is_entry_visible()));
        assert_eq!(fs[0].path, vec!["Source"]);
    }

    #[test]
    fn generics_where_clauses_and_fn_pointers() {
        let src = "pub fn fit<S: AtomSource + ?Sized>(src: &S) -> Result<Vec<f64>, E>\n\
                   where S: Sync {\n  let cb: fn(usize) -> f64 = helper;\n  cb(3);\n}\n";
        let fs = items(src);
        // The `fn(usize) -> f64` pointer type must not produce an item.
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "fit");
        assert!(fs[0].body.is_some());
    }

    #[test]
    fn nested_fns_fold_into_parent_body() {
        let src = "pub fn outer() {\n  fn inner() {}\n  inner();\n}\nfn after() {}\n";
        let fs = items(src);
        let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "after"]);
    }

    #[test]
    fn cfg_not_test_stays_production() {
        let fs = items("#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!fs[0].is_test);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let src = "macro_rules! m {\n  () => { fn fake() {} };\n}\npub fn real() {}\n";
        let fs = items(src);
        let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn body_ranges_cover_the_brace_block() {
        let toks = lex("fn f() { a.b(); }\nfn g() {}");
        let fs = parse_items(&toks);
        let (s, e) = fs[0].body.expect("body");
        assert!(toks[s].is_punct("{"));
        assert!(toks[e - 1].is_punct("}"));
        // g's body does not overlap f's.
        let (s2, _) = fs[1].body.expect("body");
        assert!(s2 >= e);
    }
}
