//! Parsing and bookkeeping for inline suppression directives.
//!
//! Syntax (inside any `//` or `/* */` comment):
//!
//! ```text
//! // rsm-lint: allow(R3) — reason the violation is acceptable
//! // rsm-lint: allow(R1, R4) - multiple rules, ASCII dash works too
//! ```
//!
//! A directive suppresses matching diagnostics on **its own line and
//! the line directly below it** (so it can sit at the end of the
//! offending line or on its own line above). The reason text after the
//! dash is mandatory: an allow without a reason is itself reported
//! (rule S0), and an allow that never matches anything is reported as
//! stale (rule S1). That keeps every exemption auditable.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Token, TokenKind};

/// One parsed `allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment starts on.
    pub line: u32,
    /// Rules this directive allows.
    pub rules: Vec<Rule>,
    /// Whether any diagnostic was actually suppressed by it.
    pub used: bool,
}

/// Directives found in a file, plus S0 diagnostics for malformed ones.
#[derive(Debug, Default)]
pub struct SuppressionSet {
    /// Well-formed directives.
    pub entries: Vec<Suppression>,
    /// Malformed-directive findings (missing reason, unknown rule).
    pub malformed: Vec<(u32, String)>,
}

impl SuppressionSet {
    /// Scans comment tokens for `rsm-lint:` directives.
    pub fn collect(tokens: &[Token]) -> SuppressionSet {
        let mut set = SuppressionSet::default();
        for t in tokens {
            let TokenKind::Comment(text) = &t.kind else {
                continue;
            };
            // Doc comments are documentation, not directives: only
            // plain `//`/`/* */` comments can carry an allow. This
            // also lets rustdoc talk *about* the syntax freely.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let Some(at) = text.find("rsm-lint:") else {
                continue;
            };
            let rest = text[at + "rsm-lint:".len()..].trim_start();
            let Some(args) = rest.strip_prefix("allow") else {
                set.malformed
                    .push((t.line, format!("unrecognized rsm-lint directive: '{rest}'")));
                continue;
            };
            let args = args.trim_start();
            let (inner, tail) = match args.strip_prefix('(').and_then(|a| a.split_once(')')) {
                Some(pair) => pair,
                None => {
                    set.malformed
                        .push((t.line, "allow directive needs a (R#, ...) rule list".into()));
                    continue;
                }
            };
            let mut rules = Vec::new();
            let mut bad = None;
            for part in inner.split(',') {
                let id = part.trim();
                match Rule::parse(id) {
                    Some(r) => rules.push(r),
                    None => bad = Some(id.to_string()),
                }
            }
            if let Some(id) = bad {
                set.malformed
                    .push((t.line, format!("unknown rule id '{id}' in allow directive")));
                continue;
            }
            if rules.is_empty() {
                set.malformed
                    .push((t.line, "allow directive lists no rules".into()));
                continue;
            }
            // The reason is whatever follows the closing paren, minus
            // leading dash/em-dash/colon punctuation.
            let reason = tail
                .trim_start()
                .trim_start_matches(['—', '-', ':', '–'])
                .trim();
            if reason.is_empty() {
                set.malformed.push((
                    t.line,
                    format!(
                        "allow({}) has no reason; write `rsm-lint: allow({}) — <why>`",
                        ids(&rules),
                        ids(&rules)
                    ),
                ));
                continue;
            }
            set.entries.push(Suppression {
                line: t.line,
                rules,
                used: false,
            });
        }
        set
    }

    /// Returns true (and marks the directive used) if `rule` at `line`
    /// is covered by a directive on the same or the preceding line.
    pub fn matches(&mut self, rule: Rule, line: u32) -> bool {
        let mut hit = false;
        for s in &mut self.entries {
            if s.rules.contains(&rule) && (s.line == line || s.line + 1 == line) {
                s.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Emits S0 (malformed) and S1 (stale) findings for this file.
    pub fn audit(&self, file: &str, out: &mut Vec<Diagnostic>) {
        for (line, msg) in &self.malformed {
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: Rule::S0,
                message: msg.clone(),
                chain: Vec::new(),
                trace: Vec::new(),
                fn_key: None,
                fix: None,
            });
        }
        for s in &self.entries {
            if !s.used {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: s.line,
                    rule: Rule::S1,
                    message: format!(
                        "allow({}) suppressed nothing; delete the stale directive",
                        ids(&s.rules)
                    ),
                    chain: Vec::new(),
                    trace: Vec::new(),
                    fn_key: None,
                    fix: None,
                });
            }
        }
    }

    /// Number of directives that suppressed at least one diagnostic.
    pub fn used_count(&self) -> usize {
        self.entries.iter().filter(|s| s.used).count()
    }
}

fn ids(rules: &[Rule]) -> String {
    rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_reasoned_allow() {
        let toks = lex("// rsm-lint: allow(R3) — lock poisoning is unrecoverable here\nx");
        let set = SuppressionSet::collect(&toks);
        assert_eq!(set.entries.len(), 1);
        assert!(set.malformed.is_empty());
        assert_eq!(set.entries[0].rules, vec![Rule::R3]);
    }

    #[test]
    fn multi_rule_and_ascii_dash() {
        let toks = lex("// rsm-lint: allow(R1, R4) - both fine here because reasons\n");
        let set = SuppressionSet::collect(&toks);
        assert_eq!(set.entries[0].rules, vec![Rule::R1, Rule::R4]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let toks = lex("// rsm-lint: allow(R2)\n// rsm-lint: allow(R2) —   \n");
        let set = SuppressionSet::collect(&toks);
        assert!(set.entries.is_empty());
        assert_eq!(set.malformed.len(), 2);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let toks = lex("// rsm-lint: allow(R42) — no such rule\n");
        let set = SuppressionSet::collect(&toks);
        assert!(set.entries.is_empty());
        assert_eq!(set.malformed.len(), 1);
        // S0/S1 are not addressable from allow().
        let toks = lex("// rsm-lint: allow(S1) — nice try\n");
        assert_eq!(SuppressionSet::collect(&toks).malformed.len(), 1);
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let toks = lex(
            "/// rsm-lint: allow(R3) — doc example, not a directive\n//! rsm-lint: allow(R9)\nx",
        );
        let set = SuppressionSet::collect(&toks);
        assert!(set.entries.is_empty());
        assert!(set.malformed.is_empty());
    }

    #[test]
    fn window_covers_same_and_next_line() {
        let toks = lex("// rsm-lint: allow(R5) — demo\nx\ny");
        let mut set = SuppressionSet::collect(&toks);
        assert!(set.matches(Rule::R5, 1));
        assert!(set.matches(Rule::R5, 2));
        assert!(!set.matches(Rule::R5, 3));
        assert!(!set.matches(Rule::R3, 2));
    }
}
