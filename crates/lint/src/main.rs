//! `rsm-lint` command-line entry point.
//!
//! ```text
//! rsm-lint check [--json] [--out FILE] [PATH...]
//! rsm-lint rules [--json]
//! ```
//!
//! `check` with no paths lints the whole workspace (found by walking
//! up from the current directory); with paths it lints exactly those
//! files/directories, treating them as library-crate production code.
//! Exit status: 0 clean, 1 diagnostics reported, 2 usage/IO error.

use rsm_lint::diag::SOURCE_RULES;
use rsm_lint::{diag, find_workspace_root, lint_paths, lint_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("rsm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rsm-lint — static analysis for determinism and numerical robustness

USAGE:
  rsm-lint check [--json] [--out FILE] [PATH...]
  rsm-lint rules [--json]

check exits 0 when clean, 1 on any unsuppressed diagnostic, 2 on
usage/IO errors. With no PATH, the enclosing cargo workspace is
scanned; explicit paths are linted as library-crate production code.
--json prints the machine-readable report to stdout; --out writes the
JSON report to FILE while keeping the human listing on stdout.
Suppress a finding with `// rsm-lint: allow(R#) — reason` (the reason
is mandatory and stale directives are themselves reported).
";

fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    let mut json = false;
    let mut out_file: Option<String> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => {
                let f = it.next().ok_or("--out requires a file argument")?;
                out_file = Some(f.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option '{flag}'\n\n{USAGE}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    match cmd.as_str() {
        "check" => cmd_check(json, out_file.as_deref(), &paths),
        "rules" => {
            cmd_rules(json);
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn cmd_check(json: bool, out_file: Option<&str>, paths: &[PathBuf]) -> Result<bool, String> {
    let report = if paths.is_empty() {
        let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
        let root = find_workspace_root(&cwd)
            .ok_or("no enclosing cargo workspace found (run from the repo)")?;
        lint_workspace(&root)?
    } else {
        lint_paths(paths)?
    };
    if let Some(f) = out_file {
        std::fs::write(f, report.to_json()).map_err(|e| format!("cannot write {f}: {e}"))?;
    }
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(report.is_clean())
}

fn cmd_rules(json: bool) {
    if json {
        let mut out = String::from("[");
        for (i, r) in SOURCE_RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\": \"{}\", \"severity\": \"{}\", \"summary\": \"{}\"}}",
                r,
                r.severity(),
                diag::json_escape(r.summary())
            ));
        }
        out.push_str("\n]\n");
        print!("{out}");
    } else {
        for r in SOURCE_RULES {
            println!("{} [{}] {}", r, r.severity(), r.summary());
        }
        println!(
            "\nSuppress with `// rsm-lint: allow(R#) — reason`; S0 flags a missing \
             reason, S1 a stale directive."
        );
    }
}
