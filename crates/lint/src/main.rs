//! `rsm-lint` command-line entry point.
//!
//! ```text
//! rsm-lint check [--format human|json|sarif] [--json] [--out FILE]
//!                [--sarif-out FILE] [--diff BASE]
//!                [--baseline FILE [--update-baseline]] [PATH...]
//! rsm-lint fix [--check]
//! rsm-lint graph [PATH...]
//! rsm-lint rules [--json]
//! ```
//!
//! `check` with no paths lints the whole workspace (found by walking
//! up from the current directory); with paths it lints exactly those
//! files/directories, treating them as library-crate production code.
//! `--diff BASE` still parses the whole workspace (the call graph is
//! always global) but only emits diagnostics for files changed vs the
//! git ref. `--baseline FILE` is the findings ratchet: known findings
//! (keyed by rule + fn-qualified path, never line numbers) are
//! filtered out and only *new* findings fail the run;
//! `--update-baseline` rewrites FILE from the current findings instead
//! of failing. `fix` applies every machine-applicable edit byte-exactly
//! and re-lints until none remain; `fix --check` applies nothing and
//! exits 1 if any fix *would* apply (the CI fix-cleanliness gate).
//! `graph` prints the deterministic call-graph snapshot.
//! Exit status: 0 clean, 1 diagnostics reported, 2 usage/IO error.

use rsm_lint::baseline::Baseline;
use rsm_lint::diag::SOURCE_RULES;
use rsm_lint::{
    diag, find_workspace_root, lint_paths, lint_workspace, lint_workspace_diff, path_units, sarif,
    workspace_units, CallGraph,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("rsm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
rsm-lint — static analysis for determinism and numerical robustness

USAGE:
  rsm-lint check [--format human|json|sarif] [--json] [--out FILE]
                 [--sarif-out FILE] [--diff BASE]
                 [--baseline FILE [--update-baseline]] [PATH...]
  rsm-lint fix [--check]
  rsm-lint graph [PATH...]
  rsm-lint rules [--json]

check exits 0 when clean, 1 on any unsuppressed diagnostic, 2 on
usage/IO errors. With no PATH, the enclosing cargo workspace is
scanned; explicit paths are linted as library-crate production code.
--format picks the stdout rendering (--json is shorthand for
--format json); --out writes the JSON report to FILE and --sarif-out
writes a SARIF 2.1.0 document to FILE, both while keeping the chosen
stdout format. --diff BASE parses the full workspace (reachability is
always global) but emits diagnostics only for files changed vs the
git ref BASE, plus untracked files. --baseline FILE filters findings
accepted by the committed ratchet (keys are rule + fn-qualified path,
never line numbers) so only new findings fail; --update-baseline
rewrites FILE from the current findings and exits clean.
fix applies every machine-applicable edit (today: R10 loop rewrites)
byte-exactly and re-lints until none remain; fix --check applies
nothing and exits 1 when any fix would apply, so CI can require a
fix-clean tree.
graph prints the deterministic workspace call-graph snapshot used by
the interprocedural rules (R3/R4/R6).
Suppress a finding with `// rsm-lint: allow(R#) — reason` (the reason
is mandatory and stale directives are themselves reported).
";

fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    let mut format: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut sarif_file: Option<String> = None;
    let mut diff_base: Option<String> = None;
    let mut baseline_file: Option<String> = None;
    let mut update_baseline = false;
    let mut fix_check = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Some("json".into()),
            "--format" => {
                let f = it.next().ok_or("--format requires human|json|sarif")?;
                format = Some(f.clone());
            }
            "--out" => {
                let f = it.next().ok_or("--out requires a file argument")?;
                out_file = Some(f.clone());
            }
            "--sarif-out" => {
                let f = it.next().ok_or("--sarif-out requires a file argument")?;
                sarif_file = Some(f.clone());
            }
            "--diff" => {
                let b = it.next().ok_or("--diff requires a git ref argument")?;
                diff_base = Some(b.clone());
            }
            "--baseline" => {
                let f = it.next().ok_or("--baseline requires a file argument")?;
                baseline_file = Some(f.clone());
            }
            "--update-baseline" => update_baseline = true,
            "--check" => fix_check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option '{flag}'\n\n{USAGE}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let format = format.unwrap_or_else(|| "human".into());
    if !matches!(format.as_str(), "human" | "json" | "sarif") {
        return Err(format!("unknown format '{format}' (human|json|sarif)"));
    }
    match cmd.as_str() {
        "check" => {
            if update_baseline && baseline_file.is_none() {
                return Err("--update-baseline requires --baseline FILE".into());
            }
            cmd_check(
                &format,
                out_file.as_deref(),
                sarif_file.as_deref(),
                diff_base.as_deref(),
                baseline_file.as_deref(),
                update_baseline,
                &paths,
            )
        }
        "fix" => {
            if !paths.is_empty() {
                return Err("fix operates on the whole workspace; drop the explicit paths".into());
            }
            cmd_fix(fix_check)
        }
        "graph" => {
            cmd_graph(&paths)?;
            Ok(true)
        }
        "rules" => {
            cmd_rules(format == "json");
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_workspace_root(&cwd)
        .ok_or_else(|| "no enclosing cargo workspace found (run from the repo)".into())
}

fn cmd_check(
    format: &str,
    out_file: Option<&str>,
    sarif_file: Option<&str>,
    diff_base: Option<&str>,
    baseline_file: Option<&str>,
    update_baseline: bool,
    paths: &[PathBuf],
) -> Result<bool, String> {
    let mut report = match (paths.is_empty(), diff_base) {
        (true, None) => lint_workspace(&workspace_root()?)?,
        (true, Some(base)) => lint_workspace_diff(&workspace_root()?, base)?,
        (false, None) => lint_paths(paths)?,
        (false, Some(_)) => {
            return Err("--diff applies to workspace runs; drop the explicit paths".into())
        }
    };
    if let Some(f) = baseline_file {
        if update_baseline {
            let snapshot = Baseline::from_report(&report);
            snapshot.save(std::path::Path::new(f))?;
            eprintln!(
                "rsm-lint: baseline {f} updated ({} key{})",
                snapshot.keys.len(),
                if snapshot.keys.len() == 1 { "" } else { "s" }
            );
            report.diagnostics.clear();
        } else {
            let baseline = Baseline::load(std::path::Path::new(f))?;
            let known = baseline.filter_new(&mut report);
            if known > 0 {
                eprintln!(
                    "rsm-lint: {known} known finding{} accepted by baseline {f}",
                    if known == 1 { "" } else { "s" }
                );
            }
        }
    }
    if let Some(f) = out_file {
        std::fs::write(f, report.to_json()).map_err(|e| format!("cannot write {f}: {e}"))?;
    }
    if let Some(f) = sarif_file {
        std::fs::write(f, sarif::to_sarif(&report))
            .map_err(|e| format!("cannot write {f}: {e}"))?;
    }
    match format {
        "json" => print!("{}", report.to_json()),
        "sarif" => print!("{}", sarif::to_sarif(&report)),
        _ => print!("{}", report.render()),
    }
    Ok(report.is_clean())
}

fn cmd_fix(check: bool) -> Result<bool, String> {
    let root = workspace_root()?;
    let summary = rsm_lint::fix::fix_workspace(&root, !check)?;
    if summary.files.is_empty() {
        println!("fix: workspace is fix-clean (nothing to apply)");
        return Ok(true);
    }
    let verb = if check { "would apply" } else { "applied" };
    for (rel, n) in &summary.files {
        println!(
            "fix: {verb} {n} edit{} in {rel}",
            if *n == 1 { "" } else { "s" }
        );
    }
    println!(
        "fix: {} edit{} in {} file{} ({} lint pass{})",
        summary.edits(),
        if summary.edits() == 1 { "" } else { "s" },
        summary.files.len(),
        if summary.files.len() == 1 { "" } else { "s" },
        summary.passes,
        if summary.passes == 1 { "" } else { "es" },
    );
    // In --check mode pending fixes are a failure (the tree must be
    // fix-clean); after a real apply the run succeeded.
    Ok(!check)
}

fn cmd_graph(paths: &[PathBuf]) -> Result<(), String> {
    let units = if paths.is_empty() {
        workspace_units(&workspace_root()?)?
    } else {
        path_units(paths)?
    };
    print!("{}", CallGraph::build(&units).snapshot());
    Ok(())
}

fn cmd_rules(json: bool) {
    if json {
        let mut out = String::from("[");
        for (i, r) in SOURCE_RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\": \"{}\", \"severity\": \"{}\", \"summary\": \"{}\"}}",
                r,
                r.severity(),
                diag::json_escape(r.summary())
            ));
        }
        out.push_str("\n]\n");
        print!("{out}");
    } else {
        for r in SOURCE_RULES {
            println!("{} [{}] {}", r, r.severity(), r.summary());
        }
        println!(
            "\nSuppress with `// rsm-lint: allow(R#) — reason`; S0 flags a missing \
             reason, S1 a stale directive."
        );
    }
}
