//! The **findings ratchet** — a committed baseline of known findings
//! that `rsm-lint check --baseline <file>` compares against, failing
//! only on *new* findings.
//!
//! Each finding is keyed by rule id plus the fn-qualified path of the
//! enclosing function ([`crate::diag::Diagnostic::baseline_key`], e.g.
//! `R3 core::lar::LarConfig::fit`), **never** by line number: edits
//! that merely shift code do not churn the baseline, while a finding
//! appearing in a new function (or a new rule firing in a known one)
//! always trips the ratchet. `--update-baseline` rewrites the file
//! from the current run; shrinking it is the only way "known debt"
//! goes away.
//!
//! The on-disk format is a tiny JSON document, written and parsed here
//! without a JSON dependency (the lint must never be the thing that
//! breaks an offline build):
//!
//! ```json
//! {
//!   "version": 1,
//!   "keys": [
//!     "R3 core::lar::LarConfig::fit"
//!   ]
//! }
//! ```

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::{json_escape, Diagnostic, Report};

/// A set of accepted finding keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted `"<rule> <fn-qualified-path>"` keys.
    pub keys: BTreeSet<String>,
}

impl Baseline {
    /// Builds the baseline that accepts exactly the findings of
    /// `report`.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            keys: report
                .diagnostics
                .iter()
                .map(Diagnostic::baseline_key)
                .collect(),
        }
    }

    /// Parses a baseline document (the format written by
    /// [`Baseline::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a `version: 1`
    /// baseline with a `keys` string array.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        if !text.contains("\"version\"") {
            return Err("baseline: missing \"version\" field".to_string());
        }
        let version_ok = text
            .split("\"version\"")
            .nth(1)
            .and_then(|rest| rest.split(':').nth(1))
            .map(|v| v.trim_start().starts_with('1'))
            .unwrap_or(false);
        if !version_ok {
            return Err("baseline: unsupported version (expected 1)".to_string());
        }
        let keys_at = text
            .find("\"keys\"")
            .ok_or_else(|| "baseline: missing \"keys\" array".to_string())?;
        let open = text[keys_at..]
            .find('[')
            .map(|o| keys_at + o)
            .ok_or_else(|| "baseline: \"keys\" is not an array".to_string())?;
        let close = text[open..]
            .find(']')
            .map(|c| open + c)
            .ok_or_else(|| "baseline: unterminated \"keys\" array".to_string())?;
        let mut keys = BTreeSet::new();
        for raw in extract_json_strings(&text[open + 1..close]) {
            keys.insert(raw);
        }
        Ok(Baseline { keys })
    }

    /// Reads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Baseline::parse(&text)
    }

    /// Renders the canonical on-disk form (sorted keys, one per line,
    /// trailing newline — byte-identical run to run).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"keys\": [");
        for (i, key) in self.keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\"", json_escape(key)));
        }
        if !self.keys.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the canonical form to `path`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
    }

    /// Splits `report` against the baseline: retains only findings
    /// whose key is **not** accepted, returning how many known
    /// findings were filtered out.
    pub fn filter_new(&self, report: &mut Report) -> usize {
        let before = report.diagnostics.len();
        report
            .diagnostics
            .retain(|d| !self.keys.contains(&d.baseline_key()));
        before - report.diagnostics.len()
    }
}

/// Extracts the JSON string literals of an array body (handles `\"`
/// escapes; other escapes pass through un-decoded, matching what
/// [`json_escape`] can produce for key text).
fn extract_json_strings(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        let mut s = String::new();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    if let Some(n) = chars.next() {
                        match n {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            other => {
                                s.push('\\');
                                s.push(other);
                            }
                        }
                    }
                }
                '"' => break,
                c => s.push(c),
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Rule;

    fn diag(rule: Rule, file: &str, line: u32, fn_key: Option<&str>) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            chain: Vec::new(),
            trace: Vec::new(),
            fn_key: fn_key.map(str::to_string),
            fix: None,
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut report = Report::default();
        report.diagnostics.push(diag(
            Rule::R8,
            "crates/core/src/lar.rs",
            10,
            Some("core::lar::fit"),
        ));
        report
            .diagnostics
            .push(diag(Rule::R3, "crates/spice/src/ac.rs", 5, None));
        let b = Baseline::from_report(&report);
        let parsed = Baseline::parse(&b.to_json()).expect("parse");
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), b.to_json());
    }

    #[test]
    fn keys_are_line_number_free() {
        let a = diag(Rule::R8, "f.rs", 10, Some("core::lar::fit"));
        let b = diag(Rule::R8, "f.rs", 999, Some("core::lar::fit"));
        assert_eq!(a.baseline_key(), b.baseline_key());
        assert_eq!(a.baseline_key(), "R8 core::lar::fit");
        // Without an enclosing fn the file path is the fallback.
        let c = diag(Rule::R8, "f.rs", 10, None);
        assert_eq!(c.baseline_key(), "R8 f.rs");
    }

    #[test]
    fn filter_new_keeps_only_unaccepted_findings() {
        let mut report = Report::default();
        report
            .diagnostics
            .push(diag(Rule::R8, "f.rs", 1, Some("core::a")));
        report
            .diagnostics
            .push(diag(Rule::R9, "f.rs", 2, Some("core::b")));
        let mut baseline = Baseline::default();
        baseline.keys.insert("R8 core::a".to_string());
        let filtered = baseline.filter_new(&mut report);
        assert_eq!(filtered, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].baseline_key(), "R9 core::b");
    }

    #[test]
    fn same_fn_different_rule_is_new() {
        let mut baseline = Baseline::default();
        baseline.keys.insert("R8 core::a".to_string());
        let mut report = Report::default();
        report
            .diagnostics
            .push(diag(Rule::R9, "f.rs", 1, Some("core::a")));
        assert_eq!(baseline.filter_new(&mut report), 0);
        assert_eq!(report.diagnostics.len(), 1);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"keys\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        let empty = Baseline::parse("{\"version\": 1, \"keys\": []}").expect("empty ok");
        assert!(empty.keys.is_empty());
    }
}
