//! Diagnostic and rule metadata types plus human/JSON rendering.

use std::fmt;

/// Every rule rsm-lint can report. `R*` rules check the source tree;
/// `S*` rules audit the suppression directives themselves (and can
/// therefore never be suppressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered-map types (`HashMap`/`HashSet`) in non-test code.
    R1,
    /// Exact floating-point `==`/`!=` against a float literal.
    R2,
    /// `unwrap()`/`expect()` in a library crate outside test code.
    R3,
    /// Nondeterminism source (`SystemTime::now`, `thread::current`,
    /// environment reads) in non-bench, non-test code.
    R4,
    /// Any `unsafe` occurrence (the workspace is 100% safe Rust).
    R5,
    /// `design_matrix(` call in a library crate: materializes the full
    /// `K×M` design matrix, defeating the `AtomSource` streaming path.
    R6,
    /// Non-associative parallel reduction: a write inside an
    /// `rsm_runtime` worker closure whose target is rooted outside the
    /// closure (dataflow rule; carries a def-use trace).
    R7,
    /// Tolerance hygiene: an inline (or `let`-propagated) float
    /// literal of tolerance magnitude flowing into a comparison or
    /// `max`/`min` guard instead of a named `rsm_linalg::tol` constant
    /// (dataflow rule; carries a def-use trace).
    R8,
    /// NaN-blind comparison: `partial_cmp().unwrap()`, a sort keyed on
    /// a raw float compare, or an exact `==` on a division/`ln`/`sqrt`
    /// tainted value (dataflow rule; carries a def-use trace).
    R9,
    /// Vectorization blocker: an indexed `for i in 0..n` loop whose
    /// body subscripts float slices affinely in `i`, in a lib-crate
    /// function reachable from a kernel entry point; rewritable to
    /// iterator/`zip` form (perf rule; may carry a machine fix).
    R10,
    /// Allocation inside a loop body in a kernel-reachable lib-crate
    /// function: `Vec::new`/`with_capacity`/`collect`/`to_vec`/
    /// `clone` executed per iteration (perf rule).
    R11,
    /// Loop-invariant expensive call: a call whose arguments are all
    /// loop-invariant per the dataflow lattice, sited inside a loop in
    /// a kernel-reachable lib-crate function (perf rule).
    R12,
    /// Malformed suppression: missing reason or unknown rule id.
    S0,
    /// Suppression that matched no diagnostic (stale allow).
    S1,
}

/// All source-checking rules, in report order.
pub const SOURCE_RULES: [Rule; 12] = [
    Rule::R1,
    Rule::R2,
    Rule::R3,
    Rule::R4,
    Rule::R5,
    Rule::R6,
    Rule::R7,
    Rule::R8,
    Rule::R9,
    Rule::R10,
    Rule::R11,
    Rule::R12,
];

impl Rule {
    /// Stable rule identifier as used in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
            Rule::R11 => "R11",
            Rule::R12 => "R12",
            Rule::S0 => "S0",
            Rule::S1 => "S1",
        }
    }

    /// Parses a rule id (`"R3"`) back to a [`Rule`]. Only source rules
    /// are addressable from `allow(...)`.
    pub fn parse(s: &str) -> Option<Rule> {
        SOURCE_RULES.iter().copied().find(|r| r.id() == s)
    }

    /// Severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            Rule::R1 | Rule::R4 | Rule::R5 | Rule::R7 | Rule::S0 => Severity::Error,
            Rule::R2
            | Rule::R3
            | Rule::R6
            | Rule::R8
            | Rule::R9
            | Rule::R10
            | Rule::R11
            | Rule::R12
            | Rule::S1 => Severity::Warning,
        }
    }

    /// One-line description shown by `rsm-lint rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::R1 => {
                "unordered HashMap/HashSet in non-test code: iteration order is \
                 randomized per process and leaks into results; use BTreeMap/BTreeSet \
                 or sort before iterating"
            }
            Rule::R2 => {
                "exact float ==/!= against a float literal: LAR/OMP tie-breaking and \
                 near-zero tests are tolerance-sensitive; use the rsm_linalg::tol \
                 helpers (exactly_zero/near_zero/approx_eq) to make intent explicit"
            }
            Rule::R3 => {
                "panic-reachability: an unwrap()/expect()/panic! site in a library \
                 crate that is reachable from a pub non-test fn (the call chain is \
                 printed); recoverable dimension/conditioning errors must surface as \
                 Result, not panics"
            }
            Rule::R4 => {
                "nondeterminism taint: a SystemTime/thread::current/env read reachable \
                 from a pub non-test fn; only the RSM_THREADS shim in crates/runtime \
                 may read ambient state (the call chain is printed)"
            }
            Rule::R5 => "unsafe code: the workspace is 100% safe Rust and stays that way",
            Rule::R6 => {
                "transitive materialization: a design_matrix() call reachable from a \
                 matrix-free entry front (LarConfig/LassoCdConfig/cross_validate/fit); \
                 the full K×M matrix is 8 GB at K=10^3, M=10^6 — solve through \
                 AtomSource (DictionarySource / CachedSource) instead"
            }
            Rule::R7 => {
                "non-associative parallel reduction: a write inside an rsm_runtime \
                 worker closure (par_chunks_reduce map / par_map_indexed fn) whose \
                 target is rooted outside the closure; partial order depends on \
                 thread count — combine through the in-order fold argument (the \
                 def-use trace is printed)"
            }
            Rule::R8 => {
                "tolerance hygiene: a float literal of tolerance magnitude (0 < |v| \
                 < 1e-3) flowing into a comparison or max/min guard in a library \
                 crate, inline or through a let binding; name it in rsm_linalg::tol \
                 or a local documented const (the def-use trace is printed)"
            }
            Rule::R9 => {
                "NaN-blind comparison: partial_cmp().unwrap()/expect(), an \
                 order-sensitive combinator keyed on a raw float compare, or an \
                 exact == on a division/ln/sqrt-tainted value; use total_cmp or a \
                 tol helper (the def-use trace is printed)"
            }
            Rule::R10 => {
                "vectorization blocker: an indexed `for i in 0..n` loop subscripting \
                 float slices affinely in the loop variable, in a kernel-reachable \
                 lib-crate function; the bounds checks defeat autovectorization — \
                 rewrite to iter/zip/chunks_exact form (a machine fix is attached \
                 when the loop variable is used only as a direct subscript)"
            }
            Rule::R11 => {
                "allocation in loop: Vec::new/with_capacity/collect/to_vec/clone \
                 executed inside a loop body on a kernel-reachable hot path; hoist \
                 the buffer out of the loop and reuse it per iteration"
            }
            Rule::R12 => {
                "loop-invariant expensive call: a call whose arguments are all \
                 loop-invariant per the dataflow lattice, sited inside a loop on a \
                 kernel-reachable hot path; hoist the call above the loop (no \
                 machine fix — hoisting can move borrows; rewrite by hand)"
            }
            Rule::S0 => "suppression directive without a written reason (or unknown rule id)",
            Rule::S1 => "suppression directive that matched no diagnostic (stale allow)",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Diagnostic severity. Both levels fail the `check` command; the
/// distinction is informational (errors break determinism guarantees
/// directly, warnings are robustness hazards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Robustness hazard.
    Warning,
    /// Direct determinism violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A machine-applicable edit attached to a diagnostic: replace the
/// byte range `span` of the diagnostic's file with `replacement`.
/// Spans come straight from lexer token spans, so they are guaranteed
/// to sit on UTF-8 char boundaries; the fix engine re-checks anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Half-open byte range `[start, end)` in the file's source text.
    pub span: (usize, usize),
    /// Replacement text spliced over the span.
    pub replacement: String,
}

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative file path (always with `/` separators).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable detail for this occurrence.
    pub message: String,
    /// For the interprocedural rules (R3/R4/R6): the shortest call
    /// chain from a reachability root to the function holding the
    /// violation site, one `key (file:line)` frame per element, root
    /// first. Empty for local rules.
    pub chain: Vec<String>,
    /// For the dataflow rules (R7/R8/R9): the def-use trace — decl
    /// site first, flow steps, sink last (always ≥ 2 frames when
    /// present). Empty for other rules.
    pub trace: Vec<String>,
    /// Fully qualified key of the enclosing function (graph node
    /// format, e.g. `core::lar::LarConfig::fit`) when the finding sits
    /// inside one — the stable, line-number-free identity the baseline
    /// ratchet keys on.
    pub fn_key: Option<String>,
    /// Machine-applicable fix, when the rule can prove the rewrite is
    /// behavior-preserving (currently only R10 direct-subscript loops).
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// `file:line: severity[rule] message` (clickable span first),
    /// followed by one indented `via:` line per call-chain frame and
    /// one `flow:` line per def-use trace frame.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.rule.severity(),
            self.rule,
            self.message
        );
        for (i, frame) in self.chain.iter().enumerate() {
            out.push_str(&format!(
                "\n    {} {frame}",
                if i == 0 { "via:" } else { "  ->" }
            ));
        }
        for (i, frame) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "\n    {} {frame}",
                if i == 0 { "flow:" } else { "   ->" }
            ));
        }
        out
    }

    /// The baseline-ratchet identity of this finding: rule id plus the
    /// fn-qualified location (falling back to the file path for
    /// findings outside any function) — deliberately **without** line
    /// numbers, so unrelated edits shifting code do not churn the
    /// baseline.
    pub fn baseline_key(&self) -> String {
        match &self.fn_key {
            Some(k) => format!("{} {k}", self.rule),
            None => format!("{} {}", self.rule, self.file),
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Full result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of suppression directives that matched a diagnostic.
    pub suppressions_used: usize,
    /// Base git ref when the run was restricted with `--diff` (the
    /// whole workspace is still parsed; only emission is filtered).
    pub diff_base: Option<String>,
}

impl Report {
    /// True when the tree is clean under the shipped rule set.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonical sort so output is byte-identical run to run.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Machine-readable JSON document (schema version 4: v2 added the
    /// per-diagnostic `chain` array and the optional `diff_base`; v3
    /// added the def-use `trace` array and the fn-qualified `fn` key
    /// for the dataflow rules R7–R9; v4 adds the optional `fix` object
    /// (`{span: [start, end], replacement}`) for the perf rules).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 4,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"suppressions_used\": {},\n",
            self.suppressions_used
        ));
        if let Some(base) = &self.diff_base {
            out.push_str(&format!("  \"diff_base\": \"{}\",\n", json_escape(base)));
        }
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let frames = |fs: &[String]| {
                fs.iter()
                    .map(|f| format!("\"{}\"", json_escape(f)))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let chain = frames(&d.chain);
            let trace = frames(&d.trace);
            let fn_key = match &d.fn_key {
                Some(k) => format!("\"{}\"", json_escape(k)),
                None => "null".to_string(),
            };
            let fix = match &d.fix {
                Some(f) => format!(
                    "{{\"span\": [{}, {}], \"replacement\": \"{}\"}}",
                    f.span.0,
                    f.span.1,
                    json_escape(&f.replacement)
                ),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"severity\": \"{}\", \"message\": \"{}\", \"fn\": {fn_key}, \
                 \"chain\": [{chain}], \"trace\": [{trace}], \"fix\": {fix}}}",
                json_escape(&d.file),
                d.line,
                d.rule,
                d.rule.severity(),
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable listing plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "rsm-lint: {} file(s) scanned, {} diagnostic(s), {} suppression(s) honored\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressions_used
        ));
        out
    }
}
