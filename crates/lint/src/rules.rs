//! The rule engine: classifies a file, walks its token stream, and
//! reports R1–R6 findings (minus suppressed ones), then audits the
//! suppressions themselves (S0/S1).

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Token, TokenKind};
use crate::suppress::SuppressionSet;

/// Library crates where `unwrap()`/`expect()` must not appear outside
/// test code (rule R3). Binaries (`cli`, `lint`) and the benchmark
/// harness may panic on their own top-level errors.
pub const LIB_CRATES: [&str; 8] = [
    "core",
    "linalg",
    "basis",
    "stats",
    "spice",
    "circuits",
    "runtime",
    // The root `sparse-rsm` facade under `src/` re-exports the crates
    // above and is held to the same standard.
    "sparse-rsm",
];

/// Crates whose whole purpose is wall-clock measurement; rule R4
/// (nondeterminism sources) does not apply there.
pub const BENCH_CRATES: [&str; 1] = ["bench"];

/// How a file is treated by crate- and location-sensitive rules.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate name derived from the path (`crates/<name>/...`), or
    /// `sparse-rsm` for the root `src/`, or `None` outside any crate.
    pub crate_name: Option<String>,
    /// File lives under a `tests/`, `benches/` or `examples/`
    /// directory: R1–R4 treat it as test code.
    pub is_test_file: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn from_path(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            ["src", ..] => Some("sparse-rsm".to_string()),
            _ => None,
        };
        let is_test_file = parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
        FileClass {
            crate_name,
            is_test_file,
        }
    }

    /// Explicit-path mode (fixtures, ad-hoc runs): the file is treated
    /// as library-crate production code so every rule is exercised
    /// regardless of where the file happens to live on disk.
    pub fn lib_context() -> FileClass {
        FileClass {
            crate_name: Some("linalg".to_string()),
            is_test_file: false,
        }
    }

    fn is_lib_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| LIB_CRATES.contains(&c))
    }

    fn is_bench_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| BENCH_CRATES.contains(&c))
    }
}

/// Lints one file's source text. `file` is the label used in
/// diagnostics (workspace-relative path).
pub fn lint_source(file: &str, src: &str, class: &FileClass) -> (Vec<Diagnostic>, usize) {
    let tokens = lex(src);
    let mut suppressions = SuppressionSet::collect(&tokens);
    let in_test = mark_test_spans(&tokens);
    // Comments never participate in code patterns; drop them (keeping
    // the parallel in_test flags aligned).
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut emit = |rule: Rule, line: u32, message: String| {
        raw.push(Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        });
    };

    for (ci, &(ti, tok)) in code.iter().enumerate() {
        let test_code = class.is_test_file || in_test[ti];
        let ident = tok.ident();
        let at = |off: isize| -> Option<&Token> {
            let j = ci as isize + off;
            code.get(usize::try_from(j).ok()?).map(|&(_, t)| t)
        };

        // R5: unsafe anywhere, including test code.
        if ident == Some("unsafe") {
            emit(
                Rule::R5,
                tok.line,
                "`unsafe` is banned: the workspace is 100% safe Rust".into(),
            );
            continue;
        }
        if test_code {
            continue;
        }

        // R1: unordered map/set types.
        if let Some(name @ ("HashMap" | "HashSet")) = ident {
            emit(
                Rule::R1,
                tok.line,
                format!(
                    "`{name}` iteration order is nondeterministic; use \
                     BTree{} or sort before iterating",
                    &name[4..]
                ),
            );
            continue;
        }

        // R2: exact float comparison against a float literal.
        if (tok.is_punct("==") || tok.is_punct("!="))
            && (at(-1).is_some_and(Token::is_float) || at(1).is_some_and(Token::is_float))
        {
            let op = match &tok.kind {
                TokenKind::Punct(p) => p.clone(),
                _ => String::new(),
            };
            emit(
                Rule::R2,
                tok.line,
                format!(
                    "exact float `{op}` against a literal; use rsm_linalg::tol \
                     (exactly_zero/near_zero/approx_eq) to make the tolerance explicit"
                ),
            );
            continue;
        }

        // R3: .unwrap()/.expect( in library crates.
        if class.is_lib_crate() && tok.is_punct(".") {
            if let Some(name @ ("unwrap" | "expect")) = at(1).and_then(Token::ident) {
                if at(2).is_some_and(|t| t.is_punct("(")) {
                    let line = at(1).map_or(tok.line, |t| t.line);
                    emit(
                        Rule::R3,
                        line,
                        format!(
                            "`{name}()` in a library crate panics on recoverable \
                             errors; return Result or justify with an allow"
                        ),
                    );
                }
            }
        }

        // R6: dense design-matrix materialization in solver-facing
        // code. `fn design_matrix(` (the definition) is exempt; calls
        // must either go through AtomSource or carry a reasoned allow.
        if (class.is_lib_crate() || class.crate_name.as_deref() == Some("cli"))
            && ident == Some("design_matrix")
            && at(1).is_some_and(|t| t.is_punct("("))
            && at(-1).and_then(Token::ident) != Some("fn")
        {
            emit(
                Rule::R6,
                tok.line,
                "`design_matrix()` materializes the full K×M matrix; solve \
                 through AtomSource (DictionarySource/CachedSource) or justify \
                 the dense path with an allow"
                    .into(),
            );
            continue;
        }

        // R4: nondeterminism sources outside bench crates.
        if !class.is_bench_crate() {
            if ident == Some("SystemTime") {
                emit(
                    Rule::R4,
                    tok.line,
                    "`SystemTime` injects wall-clock nondeterminism".into(),
                );
            } else if ident == Some("thread")
                && at(1).is_some_and(|t| t.is_punct("::"))
                && at(2).and_then(Token::ident) == Some("current")
            {
                emit(
                    Rule::R4,
                    tok.line,
                    "`thread::current()` identity must not influence results".into(),
                );
            } else if ident == Some("env") && at(1).is_some_and(|t| t.is_punct("::")) {
                if let Some(f @ ("var" | "vars" | "var_os" | "set_var" | "remove_var")) =
                    at(2).and_then(Token::ident)
                {
                    emit(
                        Rule::R4,
                        tok.line,
                        format!(
                            "`env::{f}` reads ambient process state; only the \
                             sanctioned RSM_THREADS entry point may do this"
                        ),
                    );
                }
            }
        }
    }

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !suppressions.matches(d.rule, d.line))
        .collect();
    suppressions.audit(file, &mut out);
    (out, suppressions.used_count())
}

/// Computes, for every token index, whether it sits inside a
/// `#[cfg(test)]`/`#[test]`-gated item (attribute included).
///
/// The scan finds a test attribute, then extends the span over any
/// further attributes and the following item: up to the matching `}`
/// of the item's first brace block, or the first top-level `;` for
/// brace-less items (`use`, type aliases).
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(tokens, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Extend over any immediately following attributes.
        let mut j = attr_end;
        while j < tokens.len()
            && tokens[j].is_punct("#")
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            j = scan_attribute(tokens, j + 1).0;
        }
        // Consume the item.
        let mut depth = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(";") && depth == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        for f in flags.iter_mut().take(j).skip(i) {
            *f = true;
        }
        i = j;
    }
    flags
}

/// Scans the attribute starting at the `[` token index; returns the
/// index one past the matching `]` and whether the attribute gates
/// test-only code (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ..))]`
/// — but not `#[cfg(not(test))]` and not `#[cfg_attr(test, ..)]`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                j += 1;
                break;
            }
        } else if let Some(id) = t.ident() {
            idents.push(id);
        }
        j += 1;
    }
    let is_test = idents == ["test"]
        || (idents.contains(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not")
            && !idents.contains(&"cfg_attr"));
    (j, is_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, &FileClass::lib_context()).0
    }

    fn rules_of(ds: &[Diagnostic]) -> Vec<Rule> {
        ds.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r1_fires_on_hashmap_not_btreemap() {
        let ds = lint_lib("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}\n");
        assert_eq!(rules_of(&ds), vec![Rule::R1, Rule::R1]);
        assert!(lint_lib("use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn r2_fires_on_float_literal_comparison_only() {
        let ds = lint_lib("fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R2]);
        let ds = lint_lib("fn f(x: f64) -> bool { 1e-9 != x }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R2]);
        // Integer comparisons and float inequalities are fine.
        assert!(lint_lib("fn f(n: usize) -> bool { n == 0 }\n").is_empty());
        assert!(lint_lib("fn f(x: f64) -> bool { x < 1.0 }\n").is_empty());
    }

    #[test]
    fn r3_fires_in_lib_context_and_spares_unwrap_or() {
        let ds = lint_lib("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
        let ds = lint_lib("fn f(x: Option<u8>) -> u8 { x.expect(\"boom\") }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
        assert!(lint_lib("fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }\n").is_empty());
        // Non-library crates may unwrap.
        let class = FileClass::from_path("crates/cli/src/lib.rs");
        let (ds, _) = lint_source("t.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }", &class);
        assert!(ds.is_empty());
    }

    #[test]
    fn r4_fires_on_nondeterminism_sources() {
        let ds = lint_lib("use std::time::SystemTime;\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        let ds = lint_lib("fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        let ds = lint_lib("fn f() { let t = std::thread::current(); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        // thread::spawn is fine; bench crates are exempt.
        assert!(lint_lib("fn f() { std::thread::spawn(|| {}); }\n").is_empty());
        let class = FileClass::from_path("crates/bench/src/lib.rs");
        let (ds, _) = lint_source("t.rs", "fn f() { std::env::var(\"X\"); }", &class);
        assert!(ds.is_empty());
    }

    #[test]
    fn r5_fires_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { unsafe { } }\n}\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R5]);
    }

    #[test]
    fn r6_fires_on_design_matrix_calls_not_definitions() {
        let ds = lint_lib("fn f(d: &Dictionary, s: &Matrix) { let g = d.design_matrix(s); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R6]);
        // The definition in rsm-basis is not a materialization site.
        assert!(
            lint_lib("pub fn design_matrix(&self, s: &Matrix) -> Matrix { todo!() }\n").is_empty()
        );
        // The cli crate is in scope even though it is not a lib crate.
        let class = FileClass::from_path("crates/cli/src/lib.rs");
        let (ds, _) = lint_source("t.rs", "fn f() { dict.design_matrix(&inputs); }", &class);
        assert_eq!(rules_of(&ds), vec![Rule::R6]);
        // Bench tables and test files may go dense freely.
        let class = FileClass::from_path("crates/bench/src/lib.rs");
        let (ds, _) = lint_source("t.rs", "fn f() { dict.design_matrix(&inputs); }", &class);
        assert!(ds.is_empty());
        let class = FileClass::from_path("crates/core/tests/properties.rs");
        let (ds, _) = lint_source("t.rs", "fn f() { dict.design_matrix(&inputs); }", &class);
        assert!(ds.is_empty());
        // A reasoned allow silences it.
        let src = "// rsm-lint: allow(R6) — tiny M, dense is fine here\n\
                   fn f() { dict.design_matrix(&inputs); }\n";
        let (ds, used) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn cfg_test_exempts_r1_to_r4() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  \
                   fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(lint_lib(src).is_empty());
        // #[test] functions too.
        let src = "#[test]\nfn t() { let x: Option<u8> = None; x.unwrap(); }\n";
        assert!(lint_lib(src).is_empty());
        // ... but code after the gated item is checked again.
        let src = "#[test]\nfn t() { }\nfn prod(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_lib(src)), vec![Rule::R3]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn prod(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_lib(src)), vec![Rule::R3]);
    }

    #[test]
    fn suppression_silences_and_is_audited() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    \
                   // rsm-lint: allow(R3) — demo justification\n    x.unwrap()\n}\n";
        let (ds, used) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        assert_eq!(used, 1);
        // Same-line suppression.
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // rsm-lint: allow(R3) — demo\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        // Unreasoned suppression: S0 and the original R3 both fire.
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // rsm-lint: allow(R3)\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        let mut rs = rules_of(&ds);
        rs.sort();
        assert_eq!(rs, vec![Rule::R3, Rule::S0]);
        // Stale suppression: S1.
        let src = "// rsm-lint: allow(R5) — nothing unsafe below\nfn f() {}\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        assert_eq!(rules_of(&ds), vec![Rule::S1]);
    }

    #[test]
    fn test_file_class_exempts_r1_to_r4_but_not_r5() {
        let class = FileClass::from_path("crates/core/tests/properties.rs");
        assert!(class.is_test_file);
        let (ds, _) = lint_source(
            "t.rs",
            "use std::collections::HashMap;\nfn f() { unsafe {} }\n",
            &class,
        );
        assert_eq!(rules_of(&ds), vec![Rule::R5]);
    }
}
