//! The rule engine, v3: a **local pass** (R1/R2/R5, still purely
//! lexical), three **interprocedural passes** (R3/R4/R6) driven by the
//! workspace call graph in [`crate::graph`], and three **dataflow
//! passes** (R7/R8/R9) driven by the per-function IR in [`crate::cfg`]
//! / [`crate::dataflow`] — every R7–R9 finding carries a def-use trace
//! (decl → flow → sink).
//!
//! The pipeline is two-phase: every file is lexed and item-parsed into
//! a [`Unit`] first, the call graph is built over the *whole* unit set,
//! and only then do rules run. This is what lets `--diff` restrict
//! which files *emit* diagnostics without changing what any diagnostic
//! *means* — reachability is always computed on the full workspace.

use crate::dataflow::{self, EventKind};
use crate::diag::{Diagnostic, Rule};
use crate::graph::{fn_key_at, CallGraph, Unit};
use crate::lexer::{Token, TokenKind};
use crate::suppress::SuppressionSet;

/// Library crates where panic sites must not be reachable from public
/// entry points (rule R3). Binaries (`cli`, `lint`) and the benchmark
/// harness may panic on their own top-level errors.
pub const LIB_CRATES: [&str; 9] = [
    "core",
    "linalg",
    "basis",
    "stats",
    "spice",
    "circuits",
    "runtime",
    // The serving stack answers malformed client input with error
    // frames; a reachable panic there is a denial-of-service bug.
    "serve",
    // The root `sparse-rsm` facade under `src/` re-exports the crates
    // above and is held to the same standard.
    "sparse-rsm",
];

/// Crates whose whole purpose is wall-clock measurement; rule R4
/// (nondeterminism taint) does not apply there.
pub const BENCH_CRATES: [&str; 1] = ["bench"];

/// The one module allowed to spell exact float comparisons: the
/// tolerance helpers themselves. Rule R2 does not apply to it.
pub const TOL_MODULE: &str = "crates/linalg/src/tol.rs";

/// How a file is treated by crate- and location-sensitive rules.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate name derived from the path (`crates/<name>/...`), or
    /// `sparse-rsm` for the root `src/`, or `None` outside any crate.
    pub crate_name: Option<String>,
    /// File lives under a `tests/`, `benches/` or `examples/`
    /// directory: R1–R4 treat it as test code.
    pub is_test_file: bool,
    /// Explicit-path mode (fixtures, ad-hoc runs): rules that key on
    /// workspace layout (the `RSM_THREADS` shim's crate check) are
    /// relaxed so fixtures can exercise them anywhere on disk.
    pub explicit: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn from_path(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            ["src", ..] => Some("sparse-rsm".to_string()),
            _ => None,
        };
        let is_test_file = parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
        FileClass {
            crate_name,
            is_test_file,
            explicit: false,
        }
    }

    /// Explicit-path mode (fixtures, ad-hoc runs): the file is treated
    /// as library-crate production code so every rule is exercised
    /// regardless of where the file happens to live on disk.
    pub fn lib_context() -> FileClass {
        FileClass {
            crate_name: Some("linalg".to_string()),
            is_test_file: false,
            explicit: true,
        }
    }

    /// True when the file belongs to one of the [`LIB_CRATES`].
    pub(crate) fn is_lib_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| LIB_CRATES.contains(&c))
    }

    fn is_bench_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| BENCH_CRATES.contains(&c))
    }
}

/// Lints a full unit set: local rules per file, interprocedural rules
/// over the shared call graph, then per-file suppression filtering and
/// S0/S1 audits. `emit` decides which files' diagnostics (and
/// suppression audits) make it into the report — `--diff` passes a
/// changed-file filter here; a full run passes `|_| true`.
pub fn lint_units<F: Fn(&str) -> bool>(units: &[Unit], emit: F) -> crate::diag::Report {
    let mut raw: Vec<Diagnostic> = Vec::new();
    for unit in units {
        local_pass(unit, &mut raw);
    }

    let graph = CallGraph::build(units);
    let reach_pub = graph.reach(|n| n.is_entry);
    let reach_front = graph.reach(|n| n.is_front);
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let class = &units[node.unit].class;
        let rel = &units[node.unit].rel;

        // R3v2: panic sites reachable from a public entry point.
        if class.is_lib_crate() && reach_pub[ni].yes() && !node.panic_sites.is_empty() {
            let chain = graph.chain(&reach_pub, ni);
            for s in &node.panic_sites {
                raw.push(Diagnostic {
                    file: rel.clone(),
                    line: s.line,
                    rule: Rule::R3,
                    message: format!(
                        "`{}` in a library crate is reachable from a public entry \
                         point and panics on recoverable errors; return Result or \
                         justify with an allow",
                        s.detail
                    ),
                    chain: chain.clone(),
                    trace: Vec::new(),
                    fn_key: Some(node.key.clone()),
                    fix: None,
                });
            }
        }

        // R4v2: nondeterminism reads reachable from a public entry
        // point, unless sanctioned by the RSM_THREADS shim.
        if !class.is_bench_crate() && reach_pub[ni].yes() && !node.nondet_sites.is_empty() {
            let chain = graph.chain(&reach_pub, ni);
            for s in &node.nondet_sites {
                if node.shim && s.env {
                    continue;
                }
                raw.push(Diagnostic {
                    file: rel.clone(),
                    line: s.line,
                    rule: Rule::R4,
                    message: format!(
                        "`{}` injects ambient nondeterminism on a publicly reachable \
                         path; only the RSM_THREADS shim in crates/runtime may read \
                         process state",
                        s.detail
                    ),
                    chain: chain.clone(),
                    trace: Vec::new(),
                    fn_key: Some(node.key.clone()),
                    fix: None,
                });
            }
        }

        // R6v2: materialization reachable from a matrix-free front.
        if (class.is_lib_crate() || class.crate_name.as_deref() == Some("cli"))
            && reach_front[ni].yes()
            && !node.mat_sites.is_empty()
        {
            let chain = graph.chain(&reach_front, ni);
            for s in &node.mat_sites {
                raw.push(Diagnostic {
                    file: rel.clone(),
                    line: s.line,
                    rule: Rule::R6,
                    message: "`design_matrix()` materializes the full K×M matrix on a \
                              path from a matrix-free entry front; solve through \
                              AtomSource (DictionarySource/CachedSource) or justify \
                              the dense path with an allow"
                        .into(),
                    chain: chain.clone(),
                    trace: Vec::new(),
                    fn_key: Some(node.key.clone()),
                    fix: None,
                });
            }
        }
    }

    dataflow_pass(units, &graph, &reach_pub, &mut raw);

    let reach_kernel = graph.reach(|n| n.is_kernel);
    crate::perf::perf_pass(units, &graph, &reach_kernel, &mut raw);

    let mut report = crate::diag::Report {
        files_scanned: units.len(),
        ..Default::default()
    };
    for unit in units {
        let mut suppressions = SuppressionSet::collect(&unit.tokens);
        let mut file_diags: Vec<Diagnostic> =
            raw.iter().filter(|d| d.file == unit.rel).cloned().collect();
        file_diags.retain(|d| !suppressions.matches(d.rule, d.line));
        suppressions.audit(&unit.rel, &mut file_diags);
        if emit(&unit.rel) {
            report.suppressions_used += suppressions.used_count();
            report.diagnostics.extend(file_diags);
        }
    }
    report.sort();
    report
}

/// Lints one file's source text in isolation (single-unit graph).
/// `file` is the label used in diagnostics (workspace-relative path).
pub fn lint_source(file: &str, src: &str, class: &FileClass) -> (Vec<Diagnostic>, usize) {
    let unit = Unit::new(file.to_string(), src, class.clone());
    let report = lint_units(std::slice::from_ref(&unit), |_| true);
    (report.diagnostics, report.suppressions_used)
}

/// The dataflow rules: R7 (non-associative parallel reduction), R8
/// (tolerance hygiene), R9 (NaN-blind comparison). Each function body
/// is lowered to a statement IR + CFG ([`crate::cfg`]), a float-taint
/// and constant-propagation fixpoint runs over it
/// ([`dataflow::analyze`]), and the resulting events are gated by
/// crate class and — for the tainted-`==` arm of R9 — by call-graph
/// reachability from a public entry point. Every diagnostic carries
/// the engine's def-use trace (decl → flow → sink).
fn dataflow_pass(
    units: &[Unit],
    graph: &CallGraph,
    reach_pub: &[crate::graph::Reach],
    raw: &mut Vec<Diagnostic>,
) {
    // Same cumulative numbering as CallGraph::build: per unit, one
    // module pseudo-node first, then items in parse order.
    let mut unit_first_item = Vec::with_capacity(units.len());
    let mut next = 0usize;
    for unit in units {
        unit_first_item.push(next + 1);
        next += 1 + unit.items.len();
    }

    let mut seen: std::collections::BTreeSet<(String, u32, Rule)> =
        std::collections::BTreeSet::new();
    for (ui, unit) in units.iter().enumerate() {
        let class = &unit.class;
        if class.is_test_file
            || !(class.is_lib_crate() || class.crate_name.as_deref() == Some("cli"))
        {
            continue;
        }
        let r8_in_scope = class.is_lib_crate() && !unit.rel.ends_with(TOL_MODULE);
        let r9_in_scope = class.is_lib_crate();
        for (oi, item) in unit.items.iter().enumerate() {
            let Some(body) = item.body else { continue };
            let ni = unit_first_item[ui] + oi;
            let node = &graph.nodes[ni];
            if node.is_test {
                continue;
            }
            let code = dataflow::body_code(&unit.tokens, body);
            for event in dataflow::analyze(&code, &unit.rel) {
                let (rule, message) = match &event.kind {
                    EventKind::CrossingWrite { entry, target, op } => (
                        Rule::R7,
                        format!(
                            "`{target}` is written (`{op}`) from inside a `{entry}` \
                             worker closure; worker execution order depends on the \
                             thread count — accumulate into closure-local state and \
                             combine partials through the in-order fold argument"
                        ),
                    ),
                    EventKind::MagicTolerance { literal } => {
                        if !r8_in_scope {
                            continue;
                        }
                        (
                            Rule::R8,
                            format!(
                                "magic tolerance literal `{literal}` in a comparison \
                                 guard; name it as a `rsm_linalg::tol` constant (or a \
                                 local `const`) so the tolerance is auditable"
                            ),
                        )
                    }
                    EventKind::BoundTolerance { name, literal } => {
                        if !r8_in_scope {
                            continue;
                        }
                        (
                            Rule::R8,
                            format!(
                                "`{name}` binds the tolerance-magnitude literal \
                                 `{literal}` and flows into a comparison guard; \
                                 promote it to a named `rsm_linalg::tol` constant \
                                 (or a local `const`)"
                            ),
                        )
                    }
                    EventKind::PartialCmpUnwrap => {
                        if !r9_in_scope {
                            continue;
                        }
                        (
                            Rule::R9,
                            "`partial_cmp(..).unwrap()` panics the moment a NaN \
                             reaches the comparison; use `total_cmp` or make the \
                             NaN policy explicit"
                                .to_string(),
                        )
                    }
                    EventKind::RawFloatSortKey { method } => {
                        if !r9_in_scope {
                            continue;
                        }
                        (
                            Rule::R9,
                            format!(
                                "`{method}` with a raw float `partial_cmp` comparator \
                                 is NaN-blind (NaN compares as None); use `total_cmp` \
                                 for a total order"
                            ),
                        )
                    }
                    EventKind::TaintedFloatEq { ident } => {
                        if !(r9_in_scope && reach_pub[ni].yes()) {
                            continue;
                        }
                        (
                            Rule::R9,
                            format!(
                                "`==` on `{ident}`, which carries div/ln/sqrt float \
                                 taint on a publicly reachable path; NaN makes the \
                                 join silently unequal — compare through \
                                 rsm_linalg::tol instead"
                            ),
                        )
                    }
                };
                if seen.insert((unit.rel.clone(), event.line, rule)) {
                    raw.push(Diagnostic {
                        file: unit.rel.clone(),
                        line: event.line,
                        rule,
                        message,
                        chain: Vec::new(),
                        trace: event.trace.clone(),
                        fn_key: Some(node.key.clone()),
                        fix: None,
                    });
                }
            }
        }
    }
}

/// The purely lexical rules: R1 (unordered maps), R2 (exact float
/// compare), R5 (unsafe — applies even to test code).
fn local_pass(unit: &Unit, raw: &mut Vec<Diagnostic>) {
    let class = &unit.class;
    let in_test = mark_test_spans(&unit.tokens);
    let code: Vec<(usize, &Token)> = unit
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let r2_exempt = unit.rel.ends_with(TOL_MODULE);
    let mut emit = |rule: Rule, line: u32, message: String| {
        raw.push(Diagnostic {
            file: unit.rel.clone(),
            line,
            rule,
            message,
            chain: Vec::new(),
            trace: Vec::new(),
            fn_key: fn_key_at(unit, line),
            fix: None,
        });
    };

    for (ci, &(ti, tok)) in code.iter().enumerate() {
        let test_code = class.is_test_file || in_test[ti];
        let ident = tok.ident();
        let at = |off: isize| -> Option<&Token> {
            let j = ci as isize + off;
            code.get(usize::try_from(j).ok()?).map(|&(_, t)| t)
        };

        // R5: unsafe anywhere, including test code.
        if ident == Some("unsafe") {
            emit(
                Rule::R5,
                tok.line,
                "`unsafe` is banned: the workspace is 100% safe Rust".into(),
            );
            continue;
        }
        if test_code {
            continue;
        }

        // R1: unordered map/set types.
        if let Some(name @ ("HashMap" | "HashSet")) = ident {
            emit(
                Rule::R1,
                tok.line,
                format!(
                    "`{name}` iteration order is nondeterministic; use \
                     BTree{} or sort before iterating",
                    &name[4..]
                ),
            );
            continue;
        }

        // R2: exact float comparison against a float literal (exempt
        // in the designated tolerance-helper module).
        if !r2_exempt
            && (tok.is_punct("==") || tok.is_punct("!="))
            && (at(-1).is_some_and(Token::is_float) || at(1).is_some_and(Token::is_float))
        {
            let op = match &tok.kind {
                TokenKind::Punct(p) => p.clone(),
                _ => String::new(),
            };
            emit(
                Rule::R2,
                tok.line,
                format!(
                    "exact float `{op}` against a literal; use rsm_linalg::tol \
                     (exactly_zero/near_zero/approx_eq) to make the tolerance explicit"
                ),
            );
        }
    }
}

/// Computes, for every token index, whether it sits inside a
/// `#[cfg(test)]`/`#[test]`-gated item (attribute included).
///
/// The scan finds a test attribute, then extends the span over any
/// further attributes and the following item: up to the matching `}`
/// of the item's first brace block, or the first top-level `;` for
/// brace-less items (`use`, type aliases).
pub(crate) fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(tokens, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Extend over any immediately following attributes.
        let mut j = attr_end;
        while j < tokens.len()
            && tokens[j].is_punct("#")
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            j = scan_attribute(tokens, j + 1).0;
        }
        // Consume the item.
        let mut depth = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(";") && depth == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        for f in flags.iter_mut().take(j).skip(i) {
            *f = true;
        }
        i = j;
    }
    flags
}

/// Scans the attribute starting at the `[` token index; returns the
/// index one past the matching `]` and whether the attribute gates
/// test-only code (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ..))]`
/// — but not `#[cfg(not(test))]` and not `#[cfg_attr(test, ..)]`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                j += 1;
                break;
            }
        } else if let Some(id) = t.ident() {
            idents.push(id);
        }
        j += 1;
    }
    let is_test = idents == ["test"]
        || (idents.contains(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not")
            && !idents.contains(&"cfg_attr"));
    (j, is_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, &FileClass::lib_context()).0
    }

    fn rules_of(ds: &[Diagnostic]) -> Vec<Rule> {
        ds.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r1_fires_on_hashmap_not_btreemap() {
        let ds = lint_lib("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}\n");
        assert_eq!(rules_of(&ds), vec![Rule::R1, Rule::R1]);
        assert!(lint_lib("use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn r2_fires_on_float_literal_comparison_only() {
        let ds = lint_lib("fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R2]);
        let ds = lint_lib("fn f(x: f64) -> bool { 1e-9 != x }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R2]);
        // Integer comparisons and float inequalities are fine.
        assert!(lint_lib("fn f(n: usize) -> bool { n == 0 }\n").is_empty());
        assert!(lint_lib("fn f(x: f64) -> bool { x < 1.0 }\n").is_empty());
    }

    #[test]
    fn r2_exempts_the_tolerance_module() {
        let src = "pub fn exactly_zero(x: f64) -> bool { x == 0.0 }\n";
        let class = FileClass::from_path(TOL_MODULE);
        let (ds, _) = lint_source(TOL_MODULE, src, &class);
        assert!(ds.is_empty(), "{ds:?}");
        // Every other linalg file is still checked.
        let other = "crates/linalg/src/dense.rs";
        let (ds, _) = lint_source(other, src, &FileClass::from_path(other));
        assert_eq!(rules_of(&ds), vec![Rule::R2]);
    }

    #[test]
    fn r3_fires_on_reachable_sites_with_chain() {
        // Site directly in a pub fn: one-frame chain.
        let ds = lint_lib("pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
        assert_eq!(ds[0].chain.len(), 1, "{:?}", ds[0].chain);
        // Site two frames below a pub fn: full chain printed.
        let src = "pub fn entry() { mid(); }\nfn mid() { deep(); }\n\
                   fn deep() { let x: Option<u8> = None; x.expect(\"boom\"); }\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
        assert_eq!(ds[0].chain.len(), 3, "{:?}", ds[0].chain);
        assert!(ds[0].chain[0].contains("entry"), "{:?}", ds[0].chain);
        assert!(ds[0].chain[2].contains("deep"), "{:?}", ds[0].chain);
        // panic! is a panic site too.
        let ds = lint_lib("pub fn f() { panic!(\"no\"); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
    }

    #[test]
    fn r3_spares_unreachable_and_unwrap_or() {
        // A private fn no public path reaches is not a hazard.
        assert!(lint_lib("fn orphan(x: Option<u8>) -> u8 { x.unwrap() }\n").is_empty());
        assert!(lint_lib("pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }\n").is_empty());
        // Non-library crates may unwrap.
        let class = FileClass::from_path("crates/cli/src/lib.rs");
        let (ds, _) = lint_source(
            "t.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
            &class,
        );
        assert!(ds.is_empty());
    }

    #[test]
    fn r3_treats_trait_impl_methods_as_entries() {
        let src = "impl Circuit for OpAmp {\n  fn evaluate(&self, x: &[f64]) -> f64 {\n    \
                   self.inner.get(0).unwrap()\n  }\n}\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R3]);
    }

    #[test]
    fn r4_fires_on_reachable_nondeterminism_sources() {
        // Module-scope `use` keeps firing (file-level pseudo-node).
        let ds = lint_lib("use std::time::SystemTime;\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        let ds = lint_lib("pub fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        assert!(!ds[0].chain.is_empty());
        let ds = lint_lib("pub fn f() { let t = std::thread::current(); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        // Unreachable private readers are not flagged...
        assert!(lint_lib("fn orphan() { let v = std::env::var(\"X\"); }\n").is_empty());
        // ...but become so once a pub fn calls them, chain included.
        let src = "pub fn f() { orphan(); }\nfn orphan() { let v = std::env::var(\"X\"); }\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        assert_eq!(ds[0].chain.len(), 2);
        // thread::spawn is fine; bench crates are exempt.
        assert!(lint_lib("pub fn f() { std::thread::spawn(|| {}); }\n").is_empty());
        let class = FileClass::from_path("crates/bench/src/lib.rs");
        let (ds, _) = lint_source("t.rs", "pub fn f() { std::env::var(\"X\"); }", &class);
        assert!(ds.is_empty());
    }

    #[test]
    fn r4_sanctions_the_runtime_shim_structurally() {
        let shim = "pub fn threads() -> usize {\n  \
                    match std::env::var(\"RSM_THREADS\") { Ok(_) => 2, Err(_) => 1 }\n}\n";
        // In explicit/fixture mode the crate check is relaxed: the
        // RSM_THREADS literal alone marks the shim.
        assert!(lint_lib(shim).is_empty(), "shim env read is sanctioned");
        // Without the sentinel literal the same read is flagged.
        let other = shim.replace("RSM_THREADS", "OTHER_KNOB");
        assert_eq!(rules_of(&lint_lib(&other)), vec![Rule::R4]);
        // In workspace mode only crates/runtime may host the shim.
        let class = FileClass::from_path("crates/core/src/lib.rs");
        let (ds, _) = lint_source("crates/core/src/lib.rs", shim, &class);
        assert_eq!(rules_of(&ds), vec![Rule::R4]);
        let class = FileClass::from_path("crates/runtime/src/lib.rs");
        let (ds, _) = lint_source("crates/runtime/src/lib.rs", shim, &class);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn r5_fires_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { unsafe { } }\n}\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R5]);
    }

    #[test]
    fn r6_fires_on_paths_from_fronts_only() {
        // A call inside a front fires with a one-frame chain.
        let ds = lint_lib("pub fn cross_validate(d: &D, s: &M) { let g = d.design_matrix(s); }\n");
        assert_eq!(rules_of(&ds), vec![Rule::R6]);
        assert_eq!(ds[0].chain.len(), 1);
        // Transitive: front -> helper -> design_matrix.
        let src = "impl LarConfig {\n  pub fn fit(&self, d: &D) { prep(d); }\n}\n\
                   fn prep(d: &D) { let g = d.design_matrix(); }\n";
        let ds = lint_lib(src);
        assert_eq!(rules_of(&ds), vec![Rule::R6]);
        assert_eq!(ds[0].chain.len(), 2, "{:?}", ds[0].chain);
        // A dense call *not* reachable from any front is fine now.
        assert!(lint_lib("pub fn table(d: &D) { let g = d.design_matrix(); }\n").is_empty());
        // The definition in rsm-basis is not a materialization site.
        assert!(lint_lib(
            "pub fn cross_validate() {}\n\
             pub fn design_matrix(s: &M) -> M { todo!() }\n"
        )
        .iter()
        .all(|d| d.rule != Rule::R6));
        // The cli crate is in scope even though it is not a lib crate.
        let class = FileClass::from_path("crates/cli/src/lib.rs");
        let (ds, _) = lint_source(
            "t.rs",
            "pub fn fit(dict: &D, inputs: &M) { dict.design_matrix(inputs); }",
            &class,
        );
        assert_eq!(rules_of(&ds), vec![Rule::R6]);
        // Bench tables may go dense freely.
        let class = FileClass::from_path("crates/bench/src/lib.rs");
        let (ds, _) = lint_source(
            "t.rs",
            "pub fn fit(dict: &D, inputs: &M) { dict.design_matrix(inputs); }",
            &class,
        );
        assert!(ds.is_empty());
        // A reasoned allow silences it.
        let src = "pub fn cross_validate(dict: &D, inputs: &M) {\n    \
                   // rsm-lint: allow(R6) — tiny M, dense is fine here\n    \
                   dict.design_matrix(inputs);\n}\n";
        let (ds, used) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn cfg_test_exempts_r1_to_r4() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  \
                   fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(lint_lib(src).is_empty());
        // #[test] functions too.
        let src = "#[test]\nfn t() { let x: Option<u8> = None; x.unwrap(); }\n";
        assert!(lint_lib(src).is_empty());
        // ... but code after the gated item is checked again.
        let src = "#[test]\nfn t() { }\npub fn prod(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_lib(src)), vec![Rule::R3]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\npub fn prod(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_lib(src)), vec![Rule::R3]);
    }

    #[test]
    fn suppression_silences_and_is_audited() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    \
                   // rsm-lint: allow(R3) — demo justification\n    x.unwrap()\n}\n";
        let (ds, used) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        assert_eq!(used, 1);
        // Same-line suppression.
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // rsm-lint: allow(R3) — demo\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        assert!(ds.is_empty(), "{ds:?}");
        // Unreasoned suppression: S0 and the original R3 both fire.
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // rsm-lint: allow(R3)\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        let mut rs = rules_of(&ds);
        rs.sort();
        assert_eq!(rs, vec![Rule::R3, Rule::S0]);
        // Stale suppression: S1. The flow-aware rules make this the
        // enforcement arm of the suppression re-audit — an allow on a
        // now-unreachable site *must* be deleted.
        let src = "// rsm-lint: allow(R3) — was needed under v1\n\
                   fn orphan(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let (ds, _) = lint_source("t.rs", src, &FileClass::lib_context());
        assert_eq!(rules_of(&ds), vec![Rule::S1]);
    }

    #[test]
    fn test_file_class_exempts_r1_to_r4_but_not_r5() {
        let class = FileClass::from_path("crates/core/tests/properties.rs");
        assert!(class.is_test_file);
        let (ds, _) = lint_source(
            "t.rs",
            "use std::collections::HashMap;\nfn f() { unsafe {} }\n",
            &class,
        );
        assert_eq!(rules_of(&ds), vec![Rule::R5]);
    }

    #[test]
    fn multi_unit_reachability_crosses_files() {
        let mk = |rel: &str, src: &str| Unit::new(rel.into(), src, FileClass::from_path(rel));
        let units = vec![
            mk(
                "crates/core/src/solver.rs",
                "pub fn fit() { rsm_linalg::norms::l2(); }\n",
            ),
            mk(
                "crates/linalg/src/norms.rs",
                "pub(crate) fn l2() { let x: Option<u8> = None; x.unwrap(); }\n",
            ),
        ];
        let report = lint_units(&units, |_| true);
        assert_eq!(rules_of(&report.diagnostics), vec![Rule::R3]);
        assert_eq!(report.diagnostics[0].file, "crates/linalg/src/norms.rs");
        assert_eq!(report.diagnostics[0].chain.len(), 2);
        // Emission filter: same analysis, but only solver.rs may emit.
        let report = lint_units(&units, |rel| rel.ends_with("solver.rs"));
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.files_scanned, 2, "the whole set is still parsed");
    }
}
