//! The autofix engine (`rsm-lint fix [--check]`).
//!
//! Machine-applicable edits ride on diagnostics as [`Fix`] values — a
//! half-open byte span into the file plus replacement text (today only
//! rule R10 synthesizes them; see [`crate::perf`]). This module turns
//! a workspace lint into applied edits:
//!
//! 1. lint the workspace and collect every `Fix`, grouped per file
//!    (suppression and test-file filtering have already run, so an
//!    `allow(R10)` also disables the edit);
//! 2. per file, sort edits by span and reject any overlap — two edits
//!    to the same bytes cannot both be byte-exact, so overlap is a
//!    bug in the synthesizer, surfaced as an error rather than a
//!    silently wrong merge;
//! 3. verify every span edge lands on a UTF-8 character boundary of
//!    the *current* file text, then splice back-to-front so earlier
//!    offsets stay valid — byte-exact: nothing outside the spans is
//!    touched, comments and formatting survive;
//! 4. re-lint and repeat until no fix remains (a fixed loop can in
//!    principle expose another fixable loop), bounded by
//!    [`MAX_PASSES`] so a non-converging synthesizer fails loudly
//!    instead of ping-ponging.
//!
//! `fix --check` is the CI idempotence gate: it applies nothing,
//! reports what would change, and exits nonzero when any fix would
//! apply — the committed tree must be fix-clean.

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::Fix;
use crate::{rules, workspace_units};

/// Upper bound on lint→apply passes before declaring non-convergence.
pub const MAX_PASSES: usize = 4;

/// Result of one [`fix_workspace`] run.
#[derive(Debug, Default)]
pub struct FixSummary {
    /// `(workspace-relative path, edits)` per touched file, sorted by
    /// path. In `--check` mode these are the edits that *would* apply.
    pub files: Vec<(String, usize)>,
    /// Lint passes executed (each write pass re-lints afterwards).
    pub passes: usize,
}

impl FixSummary {
    /// Total edit count across all files.
    pub fn edits(&self) -> usize {
        self.files.iter().map(|(_, n)| n).sum()
    }
}

/// Applies `edits` to `src` and returns the new text. Identical
/// duplicate edits are collapsed; otherwise edits must be in-bounds,
/// on `char` boundaries, and strictly non-overlapping.
///
/// # Errors
///
/// Returns a message naming the offending span on any violation; the
/// input is never partially applied.
pub fn apply_edits(src: &str, edits: &[Fix]) -> Result<String, String> {
    let mut sorted: Vec<&Fix> = edits.iter().collect();
    sorted.sort_by_key(|f| (f.span.0, f.span.1));
    sorted.dedup_by(|a, b| a == b);
    for w in sorted.windows(2) {
        if w[1].span.0 < w[0].span.1 {
            return Err(format!(
                "overlapping edits at bytes {}..{} and {}..{}",
                w[0].span.0, w[0].span.1, w[1].span.0, w[1].span.1
            ));
        }
    }
    for f in &sorted {
        let (s, e) = f.span;
        if s > e || e > src.len() {
            return Err(format!(
                "edit span {s}..{e} out of bounds (len {})",
                src.len()
            ));
        }
        if !src.is_char_boundary(s) || !src.is_char_boundary(e) {
            return Err(format!("edit span {s}..{e} splits a UTF-8 character"));
        }
    }
    let mut out = src.to_string();
    for f in sorted.iter().rev() {
        out.replace_range(f.span.0..f.span.1, &f.replacement);
    }
    Ok(out)
}

/// One workspace lint, reduced to the per-file fix lists.
fn collect_fixes(root: &Path) -> Result<BTreeMap<String, Vec<Fix>>, String> {
    let report = rules::lint_units(&workspace_units(root)?, |_| true);
    let mut per_file: BTreeMap<String, Vec<Fix>> = BTreeMap::new();
    for d in &report.diagnostics {
        if let Some(f) = &d.fix {
            per_file.entry(d.file.clone()).or_default().push(f.clone());
        }
    }
    Ok(per_file)
}

/// Applies every machine fix in the workspace (`write = true`), or
/// reports what would apply without touching anything
/// (`write = false`, the `--check` mode).
///
/// # Errors
///
/// Returns a message on IO failure, malformed edits (overlap, bounds,
/// UTF-8), or when fixes fail to converge within [`MAX_PASSES`].
pub fn fix_workspace(root: &Path, write: bool) -> Result<FixSummary, String> {
    let mut summary = FixSummary::default();
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    loop {
        let per_file = collect_fixes(root)?;
        summary.passes += 1;
        if per_file.is_empty() {
            break;
        }
        if !write {
            for (rel, fixes) in &per_file {
                totals.insert(rel.clone(), fixes.len());
            }
            break;
        }
        if summary.passes >= MAX_PASSES {
            return Err(format!(
                "fixes did not converge after {MAX_PASSES} passes — synthesizer bug"
            ));
        }
        for (rel, fixes) in &per_file {
            let path = root.join(rel);
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let fixed = apply_edits(&src, fixes).map_err(|e| format!("{rel}: {e}"))?;
            std::fs::write(&path, fixed)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            *totals.entry(rel.clone()).or_default() += fixes.len();
        }
    }
    summary.files = totals.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(s: usize, e: usize, r: &str) -> Fix {
        Fix {
            span: (s, e),
            replacement: r.into(),
        }
    }

    #[test]
    fn edits_apply_back_to_front_byte_exactly() {
        let src = "aa BB cc DD ee";
        let out = apply_edits(src, &[fix(3, 5, "xx"), fix(9, 11, "yyyy")]).unwrap();
        assert_eq!(out, "aa xx cc yyyy ee");
        // Order of the input list must not matter.
        let out2 = apply_edits(src, &[fix(9, 11, "yyyy"), fix(3, 5, "xx")]).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn identical_duplicates_collapse_but_overlap_is_an_error() {
        let src = "0123456789";
        let out = apply_edits(src, &[fix(2, 4, "x"), fix(2, 4, "x")]).unwrap();
        assert_eq!(out, "01x456789");
        let err = apply_edits(src, &[fix(2, 5, "x"), fix(4, 6, "y")]).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn bounds_and_utf8_boundaries_are_enforced() {
        let err = apply_edits("ab", &[fix(1, 5, "x")]).unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
        // `é` is two bytes; byte 1 is mid-character.
        let err = apply_edits("é!", &[fix(1, 3, "x")]).unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
    }

    #[test]
    fn empty_edit_list_is_identity() {
        assert_eq!(apply_edits("unchanged", &[]).unwrap(), "unchanged");
    }
}
