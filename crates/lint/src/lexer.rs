//! A minimal Rust lexer — just enough syntax awareness for the rule
//! engine in [`crate::rules`].
//!
//! The tokenizer understands line/block comments (including nesting),
//! string/char/byte literals, raw strings with hash fences, lifetimes
//! (so `'a` is not a broken char literal), identifiers, numeric
//! literals (flagging which are floats), and punctuation. Everything
//! carries a 1-based line number so diagnostics have real spans.
//!
//! It deliberately does **not** build an AST: the invariants rsm-lint
//! checks (see DESIGN.md § Static analysis) are all expressible over a
//! token stream plus a little bracket-depth bookkeeping, and a full
//! parser would be a liability in an offline, no-new-deps build.

/// What kind of token was lexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `unwrap`, ...).
    Ident(String),
    /// Numeric literal; `float` is `true` when it is a floating-point
    /// literal (fractional part, exponent, or `f32`/`f64` suffix). The
    /// raw text is preserved — the dataflow engine classifies literals
    /// by value (tolerance-magnitude test for rule R8) and needs the
    /// exact spelling for traces.
    Number {
        /// True for a floating-point literal.
        float: bool,
        /// Raw literal text as written (`1e-300`, `0.5f64`, `1_000.0`).
        text: String,
    },
    /// String, raw-string, byte-string or char literal. The raw text
    /// (quotes/fences included) is preserved so flow-aware rules can
    /// recognize designated sentinels such as the `"RSM_THREADS"`
    /// environment key.
    Literal(String),
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Punctuation. Multi-char operators that the rules care about
    /// (`==`, `!=`, `::`, `->`) are fused into one token; everything
    /// else is a single char.
    Punct(String),
    /// A comment (line or block). The raw text is preserved so the
    /// suppression parser can read `rsm-lint: allow(...)` directives.
    Comment(String),
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Half-open **byte** range `[start, end)` of the token in the
    /// source text. Byte-exact so the autofix engine can splice
    /// replacements without re-deriving offsets from char positions.
    pub span: (usize, usize),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(s) if s == p)
    }

    /// True if this token is a floating-point numeric literal.
    pub fn is_float(&self) -> bool {
        matches!(self.kind, TokenKind::Number { float: true, .. })
    }

    /// The raw numeric-literal text, if this token is a number.
    pub fn num_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Number { text, .. } => Some(text.as_str()),
            _ => None,
        }
    }
}

/// Parses the numeric value of a float-literal's raw text, tolerating
/// underscore separators and `f32`/`f64` type suffixes. Returns `None`
/// for text that is not a parseable float (integers parse fine — an
/// exponent or fraction is not required).
pub fn float_literal_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .unwrap_or(&cleaned);
    cleaned.parse::<f64>().ok()
}

/// Lexes `src` into a token vector. Never fails: unrecognized bytes
/// become single-char punctuation, and an unterminated literal simply
/// swallows the rest of the file (good enough for linting — rustc will
/// reject such a file anyway).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        byte: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    /// Byte offset of `chars[pos]` in the original source.
    byte: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            self.byte += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token {
            kind,
            line,
            span: (0, 0),
        });
    }

    /// Pushes a [`TokenKind::Literal`] spanning `start..self.pos`.
    fn push_literal(&mut self, start: usize, line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Literal(text), line);
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            // Every dispatch below pushes at most one token; record the
            // byte offset before it runs and stamp the span after.
            let start_byte = self.byte;
            let n_before = self.out.len();
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
            if self.out.len() > n_before {
                if let Some(t) = self.out.last_mut() {
                    t.span = (start_byte, self.byte);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment(text), line);
    }

    fn string_literal(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_literal(start, line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
    /// Returns false (consuming nothing) when the `r`/`b` is just the
    /// start of an ordinary identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let start = self.pos;
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // Count hash fence.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') => {}
            Some('\'') if hashes == 0 && self.peek(0) == Some('b') && ahead == 1 => {
                // b'x' byte char literal.
                self.bump(); // b
                self.bump(); // '
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push_literal(start, line);
                return true;
            }
            _ => return false,
        }
        if hashes == 0 && ahead == 1 && self.peek(0) == Some('r') {
            // Could still be `r"..."`; raw string with no fence.
        }
        // Consume prefix + hashes + opening quote.
        for _ in 0..(ahead + hashes + 1) {
            self.bump();
        }
        // Scan for closing quote followed by the same number of hashes.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_literal(start, line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` / `'static` followed by a non-quote is a lifetime;
        // `'x'` / `'\n'` is a char literal.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, line);
        } else {
            let start = self.pos;
            self.bump(); // opening quote
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push_literal(start, line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(text), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let hex_or_bin = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
        while let Some(c) = self.peek(0) {
            let cont = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.'
                    && !hex_or_bin
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && !hex_or_bin);
            if !cont {
                // A trailing `1.` (dot not followed by a digit) is
                // still a float literal: consume the dot unless it
                // starts a method call or range (`1.max(2)`, `0..n`).
                if c == '.'
                    && !hex_or_bin
                    && !matches!(self.peek(1), Some(d) if d == '.' || d == '_' || d.is_alphabetic())
                {
                    text.push(c);
                    self.bump();
                    continue;
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        let float = !hex_or_bin && is_float_text(&text);
        self.push(TokenKind::Number { float, text }, line);
    }

    fn punct(&mut self, line: u32) {
        let c = self.bump().unwrap_or(' ');
        let fused = match (c, self.peek(0)) {
            ('=', Some('=')) | ('!', Some('=')) | (':', Some(':')) => {
                let n = self.bump().unwrap_or(' ');
                format!("{c}{n}")
            }
            ('-', Some('>')) => {
                self.bump();
                "->".to_string()
            }
            _ => c.to_string(),
        };
        self.push(TokenKind::Punct(fused), line);
    }
}

/// Classifies a decimal numeric literal's text as float or integer.
///
/// Float forms: a fractional part (`1_000.0`, `1.`), an `f32`/`f64`
/// suffix (`0.5f64`, `3f64`), or a real exponent — `e`/`E` directly
/// after the digit run, followed by an optionally signed digit run
/// (`1e-300`, `2E6`). A bare `e` inside an *integer type suffix*
/// (`10usize`, `100_000usize`) is not an exponent; the v2 lexer
/// misclassified those as floats.
fn is_float_text(text: &str) -> bool {
    const INT_SUFFIXES: [&str; 12] = [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ];
    let digits: String = text.chars().filter(|&c| c != '_').collect();
    if INT_SUFFIXES.iter().any(|s| digits.ends_with(s)) {
        return false;
    }
    if digits.ends_with("f32") || digits.ends_with("f64") || digits.contains('.') {
        return true;
    }
    // Exponent: `e`/`E` right after leading digits, then `[+-]?[0-9]+`.
    let bytes = digits.as_bytes();
    let Some(e_at) = digits.find(['e', 'E']) else {
        return false;
    };
    if e_at == 0 || !bytes[..e_at].iter().all(u8::is_ascii_digit) {
        return false;
    }
    let mut rest = &bytes[e_at + 1..];
    if let [b'+' | b'-', tail @ ..] = rest {
        rest = tail;
    }
    !rest.is_empty() && rest.iter().all(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("a.unwrap()");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(".".into()),
                TokenKind::Ident("unwrap".into()),
                TokenKind::Punct("(".into()),
                TokenKind::Punct(")".into()),
            ]
        );
    }

    fn is_float(k: &TokenKind) -> bool {
        matches!(k, TokenKind::Number { float: true, .. })
    }

    fn is_int(k: &TokenKind) -> bool {
        matches!(k, TokenKind::Number { float: false, .. })
    }

    #[test]
    fn float_detection() {
        assert!(is_float(&kinds("0.0")[0]));
        assert!(is_float(&kinds("1e-9")[0]));
        assert!(is_float(&kinds("3f64")[0]));
        assert!(is_int(&kinds("42")[0]));
        assert!(is_int(&kinds("0xff")[0]));
        // `1.max(2)` is an integer method call, not a float.
        assert!(is_int(&kinds("1.max(2)")[0]));
        // Range `0..n` keeps the integer intact.
        let ks = kinds("0..n");
        assert!(is_int(&ks[0]));
        assert_eq!(ks[1], TokenKind::Punct(".".into()));
    }

    #[test]
    fn exponent_forms_are_floats() {
        for lit in ["1e-300", "1e300", "1E+6", "2e9", "1.5e-12", "1e-300f64"] {
            assert!(is_float(&kinds(lit)[0]), "{lit} should be a float");
        }
        // A negative exponent stays one token (sign after e is glued).
        let ks = kinds("x < 1e-300;");
        assert!(ks.iter().any(is_float), "{ks:?}");
        assert!(!ks
            .iter()
            .any(|k| matches!(k, TokenKind::Punct(p) if p == "-")));
    }

    #[test]
    fn typed_suffixes_classify_correctly() {
        // f32/f64 suffixes make a float even with no dot or exponent...
        for lit in ["0.5f64", "3f32", "1_000f64"] {
            assert!(is_float(&kinds(lit)[0]), "{lit} should be a float");
        }
        // ...while integer type suffixes never do. (The v2 lexer called
        // `10usize` a float because the suffix contains an `e`.)
        for lit in [
            "10usize",
            "100_000usize",
            "7isize",
            "255u8",
            "42i64",
            "1e3usize",
        ] {
            assert!(is_int(&kinds(lit)[0]), "{lit} should be an integer");
        }
    }

    #[test]
    fn underscore_separators_are_transparent() {
        assert!(is_float(&kinds("1_000.0")[0]));
        assert!(is_float(&kinds("1_0e-1_2")[0]));
        assert!(is_int(&kinds("1_000_000")[0]));
        assert_eq!(float_literal_value("1_000.0"), Some(1000.0));
    }

    #[test]
    fn number_text_is_preserved_and_parseable() {
        let ts = lex("a.max(1e-300); b < 0.5f64;");
        let nums: Vec<&str> = ts.iter().filter_map(Token::num_text).collect();
        assert_eq!(nums, vec!["1e-300", "0.5f64"]);
        assert_eq!(float_literal_value("1e-300"), Some(1e-300));
        assert_eq!(float_literal_value("0.5f64"), Some(0.5));
        assert_eq!(float_literal_value("2"), Some(2.0));
        assert_eq!(float_literal_value("not a number"), None);
    }

    #[test]
    fn fused_operators() {
        let ks = kinds("a == b != c :: d -> e");
        let ps: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(p.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ps, vec!["==", "!=", "::", "->"]);
    }

    #[test]
    fn comments_preserved_with_lines() {
        let ts = lex("x\n// rsm-lint: allow(R5) — reason\ny");
        assert_eq!(ts[1].line, 2);
        match &ts[1].kind {
            TokenKind::Comment(c) => assert!(c.contains("allow(R5)")),
            other => panic!("expected comment, got {other:?}"),
        }
        let ts = lex("/* a /* nested */ b */ z");
        assert!(matches!(ts[0].kind, TokenKind::Comment(_)));
        assert_eq!(ts[1].kind, TokenKind::Ident("z".into()));
    }

    #[test]
    fn strings_chars_lifetimes() {
        let ks = kinds(r#"let s = "a \" b"; let c = 'x'; fn f<'a>() {}"#);
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Literal(_))));
        assert!(ks.contains(&TokenKind::Lifetime));
        // Raw string with fence and a fake comment inside.
        let ks = kinds(r###"let s = r#"// not a comment "quote" here"#;"###);
        assert!(!ks.iter().any(|k| matches!(k, TokenKind::Comment(_))));
        // Byte string and byte char.
        let ks = kinds(r#"b"bytes" b'x'"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Literal("b\"bytes\"".into()),
                TokenKind::Literal("b'x'".into()),
            ]
        );
    }

    #[test]
    fn literal_text_is_preserved() {
        // Flow-aware R4 keys on the RSM_THREADS sentinel inside the
        // sanctioned runtime shim, so the raw text must survive lexing.
        let ks = kinds(r#"std::env::var("RSM_THREADS")"#);
        assert!(ks
            .iter()
            .any(|k| matches!(k, TokenKind::Literal(s) if s.contains("RSM_THREADS"))));
        let ks = kinds(r##"let s = r#"fenced RSM_THREADS"#;"##);
        assert!(ks
            .iter()
            .any(|k| matches!(k, TokenKind::Literal(s) if s.contains("RSM_THREADS"))));
    }

    #[test]
    fn byte_spans_are_exact_and_utf8_safe() {
        // The autofix engine splices by byte span; every span must land
        // on char boundaries and reproduce the source slice, including
        // after multibyte text (suppression comments use em dashes).
        let src = "let x = a[i] + 1.0; // é — π\nnext()";
        let ts = lex(src);
        for t in &ts {
            let (s, e) = t.span;
            assert!(s < e && e <= src.len(), "bad span {:?}", t.span);
            assert!(src.is_char_boundary(s) && src.is_char_boundary(e));
        }
        let a = ts.iter().find(|t| t.ident() == Some("a")).unwrap();
        assert_eq!(&src[a.span.0..a.span.1], "a");
        let next = ts.iter().find(|t| t.ident() == Some("next")).unwrap();
        assert_eq!(&src[next.span.0..next.span.1], "next");
        let num = ts.iter().find(|t| t.is_float()).unwrap();
        assert_eq!(&src[num.span.0..num.span.1], "1.0");
    }

    #[test]
    fn unsafe_in_string_is_not_an_ident() {
        let ks = kinds(r#"let s = "unsafe";"#);
        assert!(!ks.contains(&TokenKind::Ident("unsafe".into())));
    }
}
