//! Forward **dataflow analysis** over the intraprocedural IR
//! ([`crate::cfg`]) — the engine behind the numerical-safety rules
//! R7/R8/R9.
//!
//! Per function body, a small forward lattice is run to a fixpoint
//! over the CFG:
//!
//! - **Float taint** — a variable is tainted `Div`/`Ln`/`Sqrt` when its
//!   defining expression divides or calls `ln`/`log*`/`sqrt`. Taints
//!   only grow (powerset lattice of three bits), and the `==`-join rule
//!   R9 keys on them: NaN/Inf can only enter solver code through these
//!   operations.
//! - **Constant propagation** — `Unset < Lit(text) < Many`: a binding
//!   whose initializer is a single float literal carries that literal,
//!   so rule R8 sees `let eps = 1e-14; ... x < eps` through the
//!   binding, with the binding step recorded in the trace.
//!
//! Joins union taints and meet `Lit`s to `Many` on disagreement; each
//! fact carries a **witness trace** (decl site → flow steps) that the
//! sink scan extends into the full def-use trace every R7–R9 finding
//! must ship (decl → flow → sink).
//!
//! Rule R7 is a structural **closure-capture** pass on top of the same
//! token slice: writes inside a *worker* closure of an `rsm_runtime`
//! parallel entry (`par_chunks_reduce`'s map argument,
//! `par_map_indexed`'s function) whose target is rooted outside the
//! closure are flagged — partial accumulation order is thread-count
//! dependent there, while the in-order `fold` argument (the sanctioned
//! combine point) is exempt.
//!
//! Deliberate imprecision (documented in DESIGN.md § Dataflow IR, all
//! biased to over-approximate toward *reporting*): the environment is
//! flat per function (shadowing merges facts), tuple `let`s degrade
//! constants to `Many`, and nested control flow inside one expression
//! is scanned linearly.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{parse_body, pattern_binders, BodyIr, Cfg, ExprRange, StmtId, StmtKind};
use crate::lexer::{float_literal_value, Token, TokenKind};

/// How a float value can become NaN/Inf-capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Taint {
    /// Division (`/` anywhere in the defining expression).
    Div,
    /// `ln`/`log`/`log10`/`log2` method call.
    Ln,
    /// `sqrt` method call.
    Sqrt,
}

impl Taint {
    /// Human-readable operation name for trace frames.
    pub fn label(self) -> &'static str {
        match self {
            Taint::Div => "division",
            Taint::Ln => "logarithm",
            Taint::Sqrt => "square root",
        }
    }
}

/// Constant-propagation lattice: `Unset < Lit < Many`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Konst {
    /// No initializer seen yet.
    #[default]
    Unset,
    /// Exactly one float literal (raw text preserved for traces).
    Lit(String),
    /// More than one possible value.
    Many,
}

/// The per-variable fact tracked by the forward pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarFact {
    /// NaN/Inf capability of the value.
    pub taints: BTreeSet<Taint>,
    /// Constant-propagation state.
    pub konst: Konst,
    /// Witness lineage: decl site first, then flow steps.
    pub trace: Vec<String>,
}

/// Flat per-function environment (variable name → fact).
pub type Env = BTreeMap<String, VarFact>;

/// Traces are witnesses, not histories — cap their length so joins and
/// copy chains cannot grow them without bound.
const MAX_TRACE: usize = 6;

/// Joins `other` into `dst`; returns whether `dst` changed. Taints
/// union; `Lit`s that disagree become `Many`; the first non-empty
/// trace wins (a witness, not a set).
fn join_fact(dst: &mut VarFact, other: &VarFact) -> bool {
    let mut changed = false;
    for &t in &other.taints {
        changed |= dst.taints.insert(t);
    }
    let joined = match (&dst.konst, &other.konst) {
        (Konst::Unset, k) => k.clone(),
        (k, Konst::Unset) => k.clone(),
        (Konst::Lit(a), Konst::Lit(b)) if a == b => Konst::Lit(a.clone()),
        (Konst::Many, _) | (_, Konst::Many) | (Konst::Lit(_), Konst::Lit(_)) => Konst::Many,
    };
    if joined != dst.konst {
        dst.konst = joined;
        changed = true;
    }
    if dst.trace.is_empty() && !other.trace.is_empty() {
        dst.trace = other.trace.clone();
        changed = true;
    }
    changed
}

/// Joins `src` into `dst` pointwise; returns whether `dst` changed.
fn join_env(dst: &mut Env, src: &Env) -> bool {
    let mut changed = false;
    for (name, fact) in src {
        match dst.get_mut(name) {
            Some(d) => changed |= join_fact(d, fact),
            None => {
                dst.insert(name.clone(), fact.clone());
                changed = true;
            }
        }
    }
    changed
}

/// What a sink scan found (one finding-to-be, pre-rule-mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// R7: a write inside a parallel worker closure whose target is
    /// rooted outside the closure.
    CrossingWrite {
        /// The `rsm_runtime` entry point the closure feeds.
        entry: String,
        /// The written variable.
        target: String,
        /// The operator (`+=`, `=`, ...).
        op: String,
    },
    /// R8: an inline float literal of tolerance magnitude in a
    /// comparison or `max`/`min` guard.
    MagicTolerance {
        /// The literal as written.
        literal: String,
    },
    /// R8 (const-prop): a `let`-bound tolerance literal reaching a
    /// comparison through the binding.
    BoundTolerance {
        /// The binding name.
        name: String,
        /// The propagated literal text.
        literal: String,
    },
    /// R9: `partial_cmp(..).unwrap()` / `.expect(..)`.
    PartialCmpUnwrap,
    /// R9: an order-sensitive combinator (`sort_by`, `max_by`, ...)
    /// keyed on a raw `partial_cmp` closure.
    RawFloatSortKey {
        /// The combinator method name.
        method: String,
    },
    /// R9: `==` join where an operand is NaN-tainted.
    TaintedFloatEq {
        /// The tainted operand.
        ident: String,
    },
}

/// One dataflow finding: kind, sink line, and the full def-use trace
/// (decl site → flow steps → sink; always ≥ 2 frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What was found.
    pub kind: EventKind,
    /// 1-based sink line.
    pub line: u32,
    /// Def-use witness, decl first, sink last.
    pub trace: Vec<String>,
}

/// The `rsm_runtime` parallel entry points R7 guards. For
/// `par_chunks_reduce` the **last** closure argument is the in-order
/// fold (sanctioned); every other closure is a worker.
const PARALLEL_ENTRIES: [&str; 2] = ["par_chunks_reduce", "par_map_indexed"];

/// Order-sensitive combinators R9 checks for raw float compares.
const SORT_METHODS: [&str; 6] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "partition_point",
];

/// A literal is "tolerance-like" when it is small but nonzero —
/// `0.0`, `0.5`, `1.0` are structural constants, `1e-12` is a
/// tolerance someone chose.
pub fn tolerance_like(v: f64) -> bool {
    v.abs() > 0.0 && v.abs() < 1e-3
}

/// Runs the full intraprocedural analysis of one function body and
/// returns its R7–R9 events. `code` is the comment-free token slice of
/// the body (braces included), `file` the workspace-relative path used
/// in trace frames.
pub fn analyze(code: &[(usize, &Token)], file: &str) -> Vec<Event> {
    let ir = parse_body(code);
    let cfg = Cfg::build(&ir);
    let a = Analysis {
        code,
        file,
        ir: &ir,
    };

    // Forward fixpoint: block in-states, joined from predecessor
    // out-states, until stable. The lattice is finite (3 taint bits +
    // a height-3 konst chain per variable), so this terminates; the
    // round cap is a defensive backstop only.
    let mut envs: Vec<Env> = vec![Env::new(); cfg.blocks.len()];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for b in cfg.block_order() {
            let mut env = envs[b].clone();
            for &sid in &cfg.blocks[b].stmts.clone() {
                a.transfer(&mut env, sid);
            }
            for &s in &cfg.blocks[b].succs.clone() {
                let mut out = std::mem::take(&mut envs[s]);
                changed |= join_env(&mut out, &env);
                envs[s] = out;
            }
        }
    }

    // Sink scan: re-walk each block from its in-state, scanning every
    // statement's expression ranges *before* applying its transfer
    // (uses see the facts that reach them).
    let mut events = Vec::new();
    for b in cfg.block_order() {
        let mut env = envs[b].clone();
        for &sid in &cfg.blocks[b].stmts {
            a.scan_stmt(&env, sid, &mut events);
            a.transfer(&mut env, sid);
        }
    }

    a.parallel_crossings(&mut events);

    // Stable sort: within a line, generation order == source order.
    // Every statement lives in exactly one basic block and every sink
    // token is scanned exactly once, so same-(line, kind) events are
    // *distinct* findings (two guards on one line) — no dedup here;
    // the rule layer collapses per (file, line, rule) for reporting.
    events.sort_by_key(|e| e.line);
    events
}

struct Analysis<'a> {
    code: &'a [(usize, &'a Token)],
    file: &'a str,
    ir: &'a BodyIr,
}

impl Analysis<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&(_, t)| t)
    }

    fn line(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }

    fn at(&self, line: u32) -> String {
        format!("{}:{}", self.file, line)
    }

    /// Skips one balanced `()[]{}` group (or one token).
    fn skip_group(&self, i: usize) -> usize {
        let Some(t) = self.tok(i) else { return i + 1 };
        for (open, close) in [("(", ")"), ("[", "]"), ("{", "}")] {
            if t.is_punct(open) {
                let mut depth = 0usize;
                let mut j = i;
                while let Some(t) = self.tok(j) {
                    if t.is_punct(open) {
                        depth += 1;
                    } else if t.is_punct(close) {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                    j += 1;
                }
                return j;
            }
        }
        i + 1
    }

    /// True when the ident at `i` names a *value* (not a method being
    /// called, a path segment, or a macro).
    fn is_value_ident(&self, i: usize) -> bool {
        // A call (method or free) or a path/macro segment is not a
        // value read.
        let next_call_or_path = self
            .tok(i + 1)
            .is_some_and(|t| t.is_punct("(") || t.is_punct("::") || t.is_punct("!"));
        !next_call_or_path
    }

    // ------------------------------------------------------------------
    // Transfer
    // ------------------------------------------------------------------

    /// Derives the fact of the expression in `range` under `env`.
    fn expr_fact(&self, env: &Env, range: &ExprRange) -> VarFact {
        let mut fact = VarFact::default();
        let mut tokens = 0usize;
        let mut sole: Option<&str> = None;
        for i in range.clone() {
            let Some(t) = self.tok(i) else { break };
            tokens += 1;
            if t.is_punct("/") && fact.taints.insert(Taint::Div) {
                fact.trace
                    .push(format!("tainted by division ({})", self.at(t.line)));
            }
            if let Some(id) = t.ident() {
                let method = i > 0
                    && self.tok(i - 1).is_some_and(|p| p.is_punct("."))
                    && self.tok(i + 1).is_some_and(|n| n.is_punct("("));
                if method && matches!(id, "ln" | "log" | "log10" | "log2") {
                    if fact.taints.insert(Taint::Ln) {
                        fact.trace
                            .push(format!("tainted by logarithm ({})", self.at(t.line)));
                    }
                } else if method && id == "sqrt" {
                    if fact.taints.insert(Taint::Sqrt) {
                        fact.trace
                            .push(format!("tainted by square root ({})", self.at(t.line)));
                    }
                } else if self.is_value_ident(i) {
                    if let Some(f) = env.get(id) {
                        for &t in &f.taints {
                            fact.taints.insert(t);
                        }
                        if fact.trace.is_empty() {
                            fact.trace = f.trace.clone();
                        }
                        if sole.is_none() && tokens == 1 {
                            fact.konst = f.konst.clone();
                        }
                    }
                    sole = Some(id);
                }
            }
        }
        // Constant propagation: exactly one literal token, or a
        // leading `-` plus one literal.
        let toks: Vec<&Token> = range.clone().filter_map(|i| self.tok(i)).collect();
        match toks.as_slice() {
            [t] if t.is_float() => {
                fact.konst = Konst::Lit(t.num_text().unwrap_or_default().to_string());
            }
            [m, t] if m.is_punct("-") && t.is_float() => {
                fact.konst = Konst::Lit(format!("-{}", t.num_text().unwrap_or_default()));
            }
            [t] if t.ident().is_some() => {} // copied above
            _ if tokens > 0 && !matches!(fact.konst, Konst::Lit(_)) => fact.konst = Konst::Many,
            _ => {}
        }
        // Multi-token expressions never keep a copied Lit.
        if tokens > 1 && !matches!(toks.as_slice(), [m, _] if m.is_punct("-")) {
            if let Konst::Lit(_) = fact.konst {
                fact.konst = Konst::Many;
            }
        }
        fact.trace.truncate(MAX_TRACE);
        fact
    }

    fn transfer(&self, env: &mut Env, sid: StmtId) {
        let stmt = &self.ir.stmts[sid];
        match &stmt.kind {
            StmtKind::Let { names, init } => {
                let base = init
                    .as_ref()
                    .map(|r| self.expr_fact(env, r))
                    .unwrap_or_default();
                for name in names {
                    let mut f = base.clone();
                    if names.len() > 1 {
                        // Tuple destructuring: constant tracking is
                        // per-element, which the flat env cannot see.
                        if let Konst::Lit(_) = f.konst {
                            f.konst = Konst::Many;
                        }
                    }
                    let decl = match &f.konst {
                        Konst::Lit(text) => {
                            format!("`{name}` = {text} ({})", self.at(stmt.line))
                        }
                        _ => format!("`{name}` bound ({})", self.at(stmt.line)),
                    };
                    f.trace.insert(0, decl);
                    f.trace.truncate(MAX_TRACE);
                    env.insert(name.clone(), f);
                }
            }
            StmtKind::Const { name, .. } => {
                // A named local constant is the *sanctioned* form: it
                // carries no Lit fact, so R8's const-prop never fires
                // through it.
                env.insert(name.clone(), VarFact::default());
            }
            StmtKind::For { names, iter, .. } => {
                let mut base = self.expr_fact(env, iter);
                base.konst = Konst::Many;
                for name in names {
                    let mut f = base.clone();
                    f.trace
                        .insert(0, format!("`{name}` iterates ({})", self.at(stmt.line)));
                    f.trace.truncate(MAX_TRACE);
                    env.insert(name.clone(), f);
                }
            }
            StmtKind::Match { scrutinee, arms } => {
                // Arm binders are bound (over all arms — the flat env
                // joins them) with the scrutinee's taints.
                let mut base = self.expr_fact(env, scrutinee);
                base.konst = Konst::Many;
                for arm in arms {
                    for name in &arm.names {
                        let mut f = base.clone();
                        f.trace.insert(
                            0,
                            format!("`{name}` bound by match arm ({})", self.at(stmt.line)),
                        );
                        f.trace.truncate(MAX_TRACE);
                        env.insert(name.clone(), f);
                    }
                }
            }
            StmtKind::Expr { range } => self.transfer_assignment(env, range),
            StmtKind::If { .. }
            | StmtKind::While { .. }
            | StmtKind::Loop { .. }
            | StmtKind::BlockStmt { .. } => {}
        }
    }

    /// Applies `x = RHS` / `x op= RHS` inside an opaque expression
    /// statement.
    fn transfer_assignment(&self, env: &mut Env, range: &ExprRange) {
        let Some((target, op, rhs_start)) = self.find_assignment(range) else {
            return;
        };
        let rhs = self.expr_fact(env, &(rhs_start..range.end));
        let line = self.line(rhs_start.saturating_sub(1));
        match env.get_mut(&target) {
            Some(f) if op != "=" => {
                // Compound assignment reads the old value: union.
                let before = f.clone();
                join_fact(f, &rhs);
                if *f != before {
                    f.trace
                        .push(format!("updated via `{op}` ({})", self.at(line)));
                    f.trace.truncate(MAX_TRACE);
                }
            }
            _ => {
                let mut f = rhs;
                f.trace
                    .insert(0, format!("`{target}` assigned ({})", self.at(line)));
                f.trace.truncate(MAX_TRACE);
                env.insert(target, f);
            }
        }
    }

    /// Finds the first top-level assignment in `range`: returns the
    /// target's *root* identifier, the operator text, and the RHS
    /// start index.
    fn find_assignment(&self, range: &ExprRange) -> Option<(String, String, usize)> {
        let mut i = range.start;
        while i < range.end {
            let t = self.tok(i)?;
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                i = self.skip_group(i);
                continue;
            }
            if t.is_punct("=")
                && !self.tok(i + 1).is_some_and(|n| n.is_punct(">"))
                && i > range.start
            {
                let prev = self.tok(i - 1)?;
                let (op, lhs_end) = if ["+", "-", "*", "/", "%"].iter().any(|p| prev.is_punct(p)) {
                    (
                        format!(
                            "{}=",
                            match &prev.kind {
                                TokenKind::Punct(p) => p.clone(),
                                _ => String::new(),
                            }
                        ),
                        i - 1,
                    )
                } else if prev.is_punct("<") || prev.is_punct(">") || prev.is_punct("!") {
                    i += 1;
                    continue; // `<=` / `>=` comparison, not assignment
                } else {
                    ("=".to_string(), i)
                };
                let target = self.lhs_root(range.start, lhs_end)?;
                return Some((target, op, i + 1));
            }
            i += 1;
        }
        None
    }

    /// Root identifier of the assignment LHS ending just before
    /// `lhs_end` — walks back through `]` indexing and `.field` paths
    /// to the leftmost identifier (`*acc[j]` → `acc`, `self.x` →
    /// `self`).
    fn lhs_root(&self, start: usize, lhs_end: usize) -> Option<String> {
        let mut j = lhs_end;
        loop {
            if j <= start {
                return None;
            }
            let t = self.tok(j - 1)?;
            if t.is_punct("]") {
                // Walk back over the index group.
                let mut depth = 0usize;
                while j > start {
                    let t = self.tok(j - 1)?;
                    if t.is_punct("]") {
                        depth += 1;
                    } else if t.is_punct("[") {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    j -= 1;
                }
                continue;
            }
            if t.ident().is_some() {
                // Keep walking left while this is a field of a path.
                if j >= start + 2 && self.tok(j - 2).is_some_and(|p| p.is_punct(".")) {
                    j -= 2;
                    continue;
                }
                return t.ident().map(str::to_string);
            }
            return None;
        }
    }

    // ------------------------------------------------------------------
    // Sink scans (R8 / R9)
    // ------------------------------------------------------------------

    fn scan_stmt(&self, env: &Env, sid: StmtId, events: &mut Vec<Event>) {
        match &self.ir.stmts[sid].kind {
            StmtKind::Let { init, .. } => {
                if let Some(r) = init {
                    self.scan_range(env, r, events);
                }
            }
            // Named-constant initializers are the sanctioned spelling.
            StmtKind::Const { .. } => {}
            StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
                self.scan_range(env, cond, events);
            }
            StmtKind::For { iter, .. } => self.scan_range(env, iter, events),
            StmtKind::Match { scrutinee, arms } => {
                self.scan_range(env, scrutinee, events);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.scan_range(env, g, events);
                    }
                }
            }
            StmtKind::Expr { range } => self.scan_range(env, range, events),
            StmtKind::Loop { .. } | StmtKind::BlockStmt { .. } => {}
        }
    }

    /// True when the token at `i` sits next to a `<`/`>`/`<=`/`>=`
    /// comparison operator (the lexer fuses `==`/`!=` but keeps
    /// `<=`/`>=` as two tokens).
    fn comparison_adjacent(&self, range: &ExprRange, i: usize) -> bool {
        let lt_gt = |j: usize| {
            range.contains(&j)
                && self
                    .tok(j)
                    .is_some_and(|t| t.is_punct("<") || t.is_punct(">"))
        };
        if i > 0 && lt_gt(i - 1) {
            return true;
        }
        if i > 1
            && range.contains(&(i - 1))
            && self.tok(i - 1).is_some_and(|t| t.is_punct("="))
            && lt_gt(i - 2)
        {
            return true;
        }
        lt_gt(i + 1)
    }

    /// True when `i` lies inside the argument list of a `.max(` /
    /// `.min(` call within `range`.
    fn in_minmax_guard(&self, range: &ExprRange, i: usize) -> bool {
        let mut j = range.start;
        while j < range.end {
            let is_mm = self
                .tok(j)
                .and_then(Token::ident)
                .is_some_and(|id| id == "max" || id == "min");
            if is_mm
                && j > 0
                && self.tok(j - 1).is_some_and(|t| t.is_punct("."))
                && self.tok(j + 1).is_some_and(|t| t.is_punct("("))
            {
                let close = self.skip_group(j + 1);
                if (j + 2..close).contains(&i) {
                    return true;
                }
            }
            j += 1;
        }
        false
    }

    fn scan_range(&self, env: &Env, range: &ExprRange, events: &mut Vec<Event>) {
        for i in range.clone() {
            let Some(t) = self.tok(i) else { break };
            let in_cmp = self.comparison_adjacent(range, i);
            let in_guard = self.in_minmax_guard(range, i);

            // R8: inline tolerance literal at a guard.
            if t.is_float() && (in_cmp || in_guard) {
                let text = t.num_text().unwrap_or_default();
                if float_literal_value(text).is_some_and(tolerance_like) {
                    let sink = if in_cmp {
                        "comparison"
                    } else {
                        "max/min guard"
                    };
                    events.push(Event {
                        kind: EventKind::MagicTolerance {
                            literal: text.to_string(),
                        },
                        line: t.line,
                        trace: vec![
                            format!(
                                "float literal `{text}` written inline ({})",
                                self.at(t.line)
                            ),
                            format!("flows into {sink} ({})", self.at(t.line)),
                        ],
                    });
                }
            }

            if let Some(id) = t.ident() {
                // R8 const-prop: a let-bound literal reaching a guard.
                // Named constants (`const` locals, `tol::` items) carry
                // no Lit fact, so they are exempt by construction.
                if (in_cmp || in_guard) && self.is_value_ident(i) {
                    if let Some(VarFact {
                        konst: Konst::Lit(text),
                        trace,
                        ..
                    }) = env.get(id)
                    {
                        if float_literal_value(text).is_some_and(tolerance_like) {
                            let sink = if in_cmp {
                                "comparison"
                            } else {
                                "max/min guard"
                            };
                            let mut full = trace.clone();
                            full.push(format!("`{id}` flows into {sink} ({})", self.at(t.line)));
                            events.push(Event {
                                kind: EventKind::BoundTolerance {
                                    name: id.to_string(),
                                    literal: text.clone(),
                                },
                                line: t.line,
                                trace: full,
                            });
                        }
                    }
                }

                // R9a: partial_cmp(..).unwrap()/.expect(..)
                if id == "partial_cmp" && self.tok(i + 1).is_some_and(|n| n.is_punct("(")) {
                    let close = self.skip_group(i + 1);
                    if self.tok(close).is_some_and(|n| n.is_punct(".")) {
                        if let Some(m) = self.tok(close + 1).and_then(Token::ident) {
                            if m == "unwrap" || m == "expect" {
                                events.push(Event {
                                    kind: EventKind::PartialCmpUnwrap,
                                    line: t.line,
                                    trace: vec![
                                        format!(
                                            "`partial_cmp` yields None for NaN operands ({})",
                                            self.at(t.line)
                                        ),
                                        format!(
                                            "`.{m}()` on the comparison panics on NaN ({})",
                                            self.at(self.line(close + 1))
                                        ),
                                    ],
                                });
                            }
                        }
                    }
                }

                // R9b: order-sensitive combinator keyed on partial_cmp.
                if SORT_METHODS.contains(&id)
                    && i > 0
                    && self.tok(i - 1).is_some_and(|p| p.is_punct("."))
                    && self.tok(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    let close = self.skip_group(i + 1);
                    let has_partial = (i + 2..close)
                        .any(|k| self.tok(k).and_then(Token::ident) == Some("partial_cmp"));
                    if has_partial {
                        events.push(Event {
                            kind: EventKind::RawFloatSortKey {
                                method: id.to_string(),
                            },
                            line: t.line,
                            trace: vec![
                                format!(
                                    "`.{id}` orders elements by a raw float compare ({})",
                                    self.at(t.line)
                                ),
                                format!(
                                    "`partial_cmp` key is NaN-blind — ordering is undefined \
                                     under NaN ({})",
                                    self.at(t.line)
                                ),
                            ],
                        });
                    }
                }
            }

            // R9c: `==` join with a NaN-tainted operand.
            if t.is_punct("==") {
                for j in [i.wrapping_sub(1), i + 1] {
                    if !range.contains(&j) {
                        continue;
                    }
                    let Some(id) = self.tok(j).and_then(Token::ident) else {
                        continue;
                    };
                    let Some(f) = env.get(id) else { continue };
                    if f.taints.is_empty() {
                        continue;
                    }
                    let labels: Vec<&str> = f.taints.iter().map(|t| t.label()).collect();
                    let mut full = f.trace.clone();
                    full.push(format!(
                        "`{id}` ({}-tainted) joins an exact `==` ({})",
                        labels.join("/"),
                        self.at(t.line)
                    ));
                    events.push(Event {
                        kind: EventKind::TaintedFloatEq {
                            ident: id.to_string(),
                        },
                        line: t.line,
                        trace: full,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // R7: closure-capture pass
    // ------------------------------------------------------------------

    /// Scans the whole body for `rsm_runtime` parallel entry calls and
    /// checks every *worker* closure for writes to targets rooted
    /// outside the closure.
    fn parallel_crossings(&self, events: &mut Vec<Event>) {
        let mut i = 0usize;
        while i < self.code.len() {
            let is_entry = self
                .tok(i)
                .and_then(Token::ident)
                .is_some_and(|id| PARALLEL_ENTRIES.contains(&id));
            if !is_entry || !self.tok(i + 1).is_some_and(|t| t.is_punct("(")) {
                i += 1;
                continue;
            }
            let entry = self.tok(i).and_then(Token::ident).unwrap().to_string();
            let close = self.skip_group(i + 1);
            let args = self.split_args(i + 2, close.saturating_sub(1));
            let closures: Vec<ExprRange> = args
                .into_iter()
                .filter(|r| self.closure_head(r.start).is_some())
                .collect();
            let workers: &[ExprRange] = if entry == "par_chunks_reduce" && !closures.is_empty() {
                // The last closure is the in-order fold — sanctioned.
                &closures[..closures.len() - 1]
            } else {
                &closures[..]
            };
            for w in workers {
                self.check_worker(w, &entry, events);
            }
            i = close;
        }
    }

    /// If the tokens at `start` begin a closure (`|..|` or `move |..|`),
    /// returns the index of the opening `|`.
    fn closure_head(&self, start: usize) -> Option<usize> {
        match self.tok(start) {
            Some(t) if t.is_punct("|") => Some(start),
            Some(t) if t.ident() == Some("move") => self
                .tok(start + 1)
                .is_some_and(|n| n.is_punct("|"))
                .then_some(start + 1),
            _ => None,
        }
    }

    /// Splits `[start, end)` at top-level commas.
    fn split_args(&self, start: usize, end: usize) -> Vec<ExprRange> {
        let mut out = Vec::new();
        let mut arg_start = start;
        let mut i = start;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                i = self.skip_group(i);
                continue;
            }
            if t.is_punct(",") {
                if i > arg_start {
                    out.push(arg_start..i);
                }
                arg_start = i + 1;
            }
            i += 1;
        }
        if end > arg_start {
            out.push(arg_start..end);
        }
        out
    }

    /// Binder names of a closure parameter list `[start, end)` (the
    /// region between the two `|`s): per-parameter, only tokens before
    /// the top-level `:` bind.
    fn closure_params(&self, start: usize, end: usize) -> Vec<String> {
        let mut names = Vec::new();
        for param in self.split_args(start, end) {
            let mut stop = param.end;
            for k in param.clone() {
                if self.tok(k).is_some_and(|t| t.is_punct(":")) {
                    stop = k;
                    break;
                }
            }
            names.extend(pattern_binders(self.code, param.start..stop));
        }
        names
    }

    /// Checks one worker closure for writes whose target is rooted
    /// outside the closure.
    fn check_worker(&self, closure: &ExprRange, entry: &str, events: &mut Vec<Event>) {
        let Some(pipe) = self.closure_head(closure.start) else {
            return;
        };
        // Find the closing `|` of the parameter list.
        let mut params_end = pipe + 1;
        while params_end < closure.end && !self.tok(params_end).is_some_and(|t| t.is_punct("|")) {
            params_end += 1;
        }
        let body = params_end + 1..closure.end;

        // Closure-local names + alias roots (`for yi in y.iter_mut()`
        // makes `yi` local but rooted at `y`: writing through it still
        // escapes).
        let mut locals: BTreeSet<String> = self
            .closure_params(pipe + 1, params_end)
            .into_iter()
            .collect();
        let mut roots: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut k = body.start;
        while k < body.end {
            let Some(t) = self.tok(k) else { break };
            match t.ident() {
                Some("let") => {
                    let mut eq = k + 1;
                    while eq < body.end
                        && !self
                            .tok(eq)
                            .is_some_and(|t| t.is_punct("=") || t.is_punct(";"))
                    {
                        eq = if self
                            .tok(eq)
                            .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
                        {
                            self.skip_group(eq)
                        } else {
                            eq + 1
                        };
                    }
                    let mut pat_end = eq;
                    for c in k + 1..eq {
                        if self.tok(c).is_some_and(|t| t.is_punct(":")) {
                            pat_end = c;
                            break;
                        }
                    }
                    let binders = pattern_binders(self.code, k + 1..pat_end);
                    let mut rhs_end = eq;
                    while rhs_end < body.end && !self.tok(rhs_end).is_some_and(|t| t.is_punct(";"))
                    {
                        rhs_end += 1;
                    }
                    let rhs_roots = self.mut_borrow_roots(eq + 1, rhs_end);
                    for b in binders {
                        if let Some(rs) = &rhs_roots {
                            roots.insert(b.clone(), rs.clone());
                        }
                        locals.insert(b);
                    }
                    k = eq + 1;
                }
                Some("for") => {
                    let mut in_at = k + 1;
                    while in_at < body.end && self.tok(in_at).and_then(Token::ident) != Some("in") {
                        in_at += 1;
                    }
                    let binders = pattern_binders(self.code, k + 1..in_at);
                    let mut iter_end = in_at;
                    while iter_end < body.end
                        && !self.tok(iter_end).is_some_and(|t| t.is_punct("{"))
                    {
                        iter_end = if self
                            .tok(iter_end)
                            .is_some_and(|t| t.is_punct("(") || t.is_punct("["))
                        {
                            self.skip_group(iter_end)
                        } else {
                            iter_end + 1
                        };
                    }
                    let iter_roots = self.mut_borrow_roots(in_at + 1, iter_end);
                    for b in binders {
                        if let Some(rs) = &iter_roots {
                            roots.insert(b.clone(), rs.clone());
                        }
                        locals.insert(b);
                    }
                    k = iter_end;
                }
                _ if t.is_punct("|") => {
                    // Nested closure: its params are local (their alias
                    // roots are not tracked — a documented
                    // under-approximation).
                    let mut close_pipe = k + 1;
                    while close_pipe < body.end
                        && !self.tok(close_pipe).is_some_and(|t| t.is_punct("|"))
                    {
                        close_pipe += 1;
                    }
                    for b in self.closure_params(k + 1, close_pipe) {
                        locals.insert(b);
                    }
                    k = close_pipe + 1;
                }
                _ => k += 1,
            }
        }

        // Writes inside the closure body.
        let mut k = body.start;
        while k < body.end {
            let Some(t) = self.tok(k) else { break };
            if t.is_punct("=")
                && !self.tok(k + 1).is_some_and(|n| n.is_punct(">"))
                && k > body.start
            {
                let prev = self.tok(k - 1).unwrap();
                if prev.is_punct("==")
                    || prev.is_punct("!=")
                    || prev.is_punct("<")
                    || prev.is_punct(">")
                    || prev.is_punct("!")
                {
                    k += 1;
                    continue;
                }
                let (op, lhs_end) = if ["+", "-", "*", "/", "%"].iter().any(|p| prev.is_punct(p)) {
                    (
                        format!(
                            "{}=",
                            match &prev.kind {
                                TokenKind::Punct(p) => p.clone(),
                                _ => String::new(),
                            }
                        ),
                        k - 1,
                    )
                } else {
                    ("=".to_string(), k)
                };
                if let Some(target) = self.lhs_root(body.start, lhs_end) {
                    if let Some(outer) = self.escapes(&target, &locals, &roots) {
                        let line = t.line;
                        let decl = self
                            .decl_frame(&outer)
                            .unwrap_or_else(|| format!("`{outer}` captured from enclosing scope"));
                        events.push(Event {
                            kind: EventKind::CrossingWrite {
                                entry: entry.to_string(),
                                target: outer.clone(),
                                op: op.clone(),
                            },
                            line,
                            trace: vec![
                                decl,
                                format!(
                                    "written (`{op}`) inside a `{entry}` worker closure ({})",
                                    self.at(line)
                                ),
                                format!(
                                    "worker execution order depends on thread count — combine \
                                     partials through the in-order fold argument instead"
                                ),
                            ],
                        });
                    }
                }
            }
            k += 1;
        }
    }

    /// Roots of the mutable borrows taken in `[start, end)` — binders
    /// introduced from such a region *alias* their source, so writes
    /// through them escape with it. Only the borrowed place expression
    /// itself roots: `&mut block[i * other.cols..]` roots `block` (not
    /// the index arithmetic's `other`), `y.iter_mut()` roots `y`.
    /// Owned initializers (`vec![..]`, arithmetic) return `None`: the
    /// binder is a fresh value and fully closure-local.
    fn mut_borrow_roots(&self, start: usize, end: usize) -> Option<BTreeSet<String>> {
        let mut out = BTreeSet::new();
        for k in start..end {
            let Some(t) = self.tok(k) else { break };
            // `&mut <place>`: root = first ident of the place.
            if t.is_punct("&") && self.tok(k + 1).and_then(Token::ident) == Some("mut") {
                let mut j = k + 2;
                while j < end
                    && self
                        .tok(j)
                        .is_some_and(|t| t.is_punct("*") || t.is_punct("("))
                {
                    j += 1;
                }
                if let Some(id) = self.tok(j).and_then(Token::ident) {
                    out.insert(id.to_string());
                }
            }
            // `<recv>.iter_mut()` / `.get_mut(..)` / `.split_at_mut(..)`:
            // root = leftmost ident of the receiver chain.
            if let Some(id) = t.ident() {
                if (id.ends_with("_mut") || id.contains("_mut_"))
                    && k > start
                    && self.tok(k - 1).is_some_and(|p| p.is_punct("."))
                {
                    if let Some(root) = self.lhs_root(start, k - 1) {
                        out.insert(root);
                    }
                }
            }
        }
        (!out.is_empty()).then_some(out)
    }

    /// Resolves `name` through the alias-root map: returns the first
    /// transitive root that is *not* closure-local (the escape
    /// witness), or `None` when fully closure-local.
    fn escapes(
        &self,
        name: &str,
        locals: &BTreeSet<String>,
        roots: &BTreeMap<String, BTreeSet<String>>,
    ) -> Option<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![name.to_string()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if !locals.contains(&n) {
                return Some(n);
            }
            if let Some(rs) = roots.get(&n) {
                stack.extend(rs.iter().cloned());
            }
        }
        None
    }

    /// Finds the `let` statement binding `name` anywhere in the body
    /// and renders its decl frame.
    fn decl_frame(&self, name: &str) -> Option<String> {
        for stmt in &self.ir.stmts {
            if let StmtKind::Let { names, .. } = &stmt.kind {
                if names.iter().any(|n| n == name) {
                    return Some(format!(
                        "`{name}` declared outside the worker closure ({})",
                        self.at(stmt.line)
                    ));
                }
            }
        }
        None
    }
}

/// Builds the comment-free code slice of a body token range — the
/// input shape [`analyze`] expects — preserving original token-stream
/// indices.
pub fn body_code(tokens: &[Token], body: (usize, usize)) -> Vec<(usize, &Token)> {
    tokens[body.0..body.1]
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
        .map(|(off, t)| (body.0 + off, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn events_of(body: &str) -> Vec<Event> {
        let toks = lex(body);
        let code: Vec<(usize, &Token)> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
            .collect();
        analyze(&code, "test.rs")
    }

    #[test]
    fn magic_tolerance_fires_in_comparisons_and_guards() {
        let ev = events_of("{ if x < 1e-300 { return; } let y = n.max(1e-14); }");
        assert_eq!(ev.len(), 2, "{ev:?}");
        assert!(
            matches!(&ev[0].kind, EventKind::MagicTolerance { literal } if literal == "1e-300")
        );
        assert!(matches!(&ev[1].kind, EventKind::MagicTolerance { literal } if literal == "1e-14"));
        for e in &ev {
            assert!(e.trace.len() >= 2, "trace must be decl→sink: {e:?}");
        }
    }

    #[test]
    fn structural_floats_are_not_tolerances() {
        // 0.0 / 0.5 / 2.0 are structural constants, not tolerances.
        let ev = events_of("{ if x < 0.5 { f(); } let y = z.max(0.0); let w = v.min(2.0); }");
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn named_constants_are_sanctioned() {
        // A local `const` and an external SCREAMING const both pass.
        let ev = events_of(
            "{ const STEP_TOL: f64 = 1e-14; if x < STEP_TOL { f(); }\n\
             if y < tol::NORM_FLOOR { g(); } }",
        );
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn let_bound_tolerance_propagates_with_trace() {
        let ev = events_of("{ let eps = 1e-12; if x < eps { f(); } }");
        assert_eq!(ev.len(), 1, "{ev:?}");
        let EventKind::BoundTolerance { name, literal } = &ev[0].kind else {
            panic!("expected BoundTolerance: {ev:?}");
        };
        assert_eq!(name, "eps");
        assert_eq!(literal, "1e-12");
        assert!(ev[0].trace.len() >= 2);
        assert!(
            ev[0].trace[0].contains("`eps` = 1e-12"),
            "{:?}",
            ev[0].trace
        );
        assert!(ev[0].trace.last().unwrap().contains("comparison"));
    }

    #[test]
    fn copied_binding_extends_the_trace() {
        let ev = events_of("{ let eps = 1e-12; let tol = eps; if x < tol { f(); } }");
        assert_eq!(ev.len(), 1, "{ev:?}");
        assert!(matches!(&ev[0].kind, EventKind::BoundTolerance { name, .. } if name == "tol"));
        // decl frame, copy frame, sink frame.
        assert!(ev[0].trace.len() >= 3, "{:?}", ev[0].trace);
    }

    #[test]
    fn branch_join_degrades_disagreeing_constants() {
        // eps is 1e-12 on one path and 1e-9 on the other: Lit join →
        // Many, so the const-prop sink does not fire (imprecision in
        // the non-reporting direction is acceptable here because the
        // decl sites themselves were already scanned as literals... but
        // bare `let` initializers are not guard sinks, so nothing
        // fires).
        let ev = events_of("{ let mut eps = 1e-12; if wide { eps = 1e-9; } if x < eps { f(); } }");
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn partial_cmp_unwrap_fires() {
        let ev = events_of("{ let o = a.partial_cmp(&b).unwrap(); }");
        assert_eq!(ev.len(), 1, "{ev:?}");
        assert!(matches!(ev[0].kind, EventKind::PartialCmpUnwrap));
        assert!(ev[0].trace.len() >= 2);
    }

    #[test]
    fn sort_by_raw_float_compare_fires() {
        let ev = events_of("{ xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        // Both the combinator and the unwrap inside it are events; the
        // rule layer dedupes per (rule, line).
        assert!(
            ev.iter().any(
                |e| matches!(&e.kind, EventKind::RawFloatSortKey { method } if method == "sort_by")
            ),
            "{ev:?}"
        );
    }

    #[test]
    fn total_cmp_is_clean() {
        let ev = events_of("{ xs.sort_by(|a, b| a.total_cmp(b)); }");
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn tainted_eq_fires_through_division() {
        let ev = events_of("{ let r = num / den; if r == target { f(); } }");
        assert_eq!(ev.len(), 1, "{ev:?}");
        let EventKind::TaintedFloatEq { ident } = &ev[0].kind else {
            panic!("expected TaintedFloatEq: {ev:?}");
        };
        assert_eq!(ident, "r");
        assert!(
            ev[0].trace.iter().any(|f| f.contains("division")),
            "{:?}",
            ev[0].trace
        );
    }

    #[test]
    fn taint_propagates_through_copies_and_loops() {
        let ev = events_of(
            "{ let mut acc = 0.0; for v in xs { acc += v.sqrt(); }\n\
             let copy = acc; if copy == limit { f(); } }",
        );
        assert!(
            ev.iter()
                .any(|e| matches!(&e.kind, EventKind::TaintedFloatEq { ident } if ident == "copy")),
            "{ev:?}"
        );
    }

    #[test]
    fn untainted_eq_is_silent() {
        let ev = events_of("{ let a = b + c; if a == d { f(); } }");
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn crossing_accumulation_in_worker_closure_fires() {
        let ev = events_of(
            "{ let mut total = 0.0;\n\
             par_map_indexed(n, |i| { total += w[i]; 0 }); }",
        );
        assert_eq!(ev.len(), 1, "{ev:?}");
        let EventKind::CrossingWrite { entry, target, op } = &ev[0].kind else {
            panic!("expected CrossingWrite: {ev:?}");
        };
        assert_eq!(entry, "par_map_indexed");
        assert_eq!(target, "total");
        assert_eq!(op, "+=");
        assert!(ev[0].trace.len() >= 3, "{:?}", ev[0].trace);
        assert!(
            ev[0].trace[0].contains("declared outside"),
            "{:?}",
            ev[0].trace
        );
    }

    #[test]
    fn sanctioned_fold_closure_is_exempt() {
        // The last closure of par_chunks_reduce is the in-order fold —
        // outer accumulation there is the sanctioned pattern.
        let ev = events_of(
            "{ let mut acc = vec![0.0; m];\n\
             par_chunks_reduce(len, cl, |r| { let mut part = vec![0.0; m];\n\
             for i in r { part[0] += x[i]; } part },\n\
             |part| { for (a, p) in acc.iter_mut().zip(part) { *a += p; } }); }",
        );
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn aliased_write_through_iter_mut_escapes() {
        // `yi` is a closure-local binder, but it roots at the captured
        // `y`: writing through it escapes the worker closure.
        let ev = events_of(
            "{ let mut y = vec![0.0; n];\n\
             par_map_indexed(n, |i| { for yi in y.iter_mut() { *yi += 1.0; } 0 }); }",
        );
        assert_eq!(ev.len(), 1, "{ev:?}");
        assert!(
            matches!(&ev[0].kind, EventKind::CrossingWrite { target, .. } if target == "y"),
            "{ev:?}"
        );
    }

    #[test]
    fn closure_local_accumulation_is_clean() {
        let ev = events_of(
            "{ par_map_indexed(n, |i| { let mut s = 0.0;\n\
             for v in 0..i { s += v as f64; } s }); }",
        );
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn events_are_line_sorted_and_deduped() {
        let ev = events_of("{ if x < 1e-300 { f(); } if y < 1e-300 { g(); } }");
        assert_eq!(ev.len(), 2);
        assert!(ev[0].line <= ev[1].line);
    }

    #[test]
    fn body_code_preserves_original_indices() {
        let toks = lex("fn f() { // note\n  a(); }");
        let open = toks.iter().position(|t| t.is_punct("{")).unwrap();
        let code = body_code(&toks, (open, toks.len()));
        assert!(code
            .iter()
            .all(|(_, t)| !matches!(t.kind, TokenKind::Comment(_))));
        assert_eq!(code[0].0, open);
    }
}
