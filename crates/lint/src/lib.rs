//! `rsm-lint` — workspace static analysis for determinism and
//! numerical-robustness invariants.
//!
//! The paper's central claim (Li, DAC 2009) is that LAR/OMP pull a
//! *deterministic* sparse solution out of an underdetermined system,
//! and PR 1 extended that promise to the runtime: results are
//! bit-identical at any thread count. This crate guards the invariants
//! that make that true *statically*:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | R1   | no unordered-map iteration in result-affecting code |
//! | R2   | no exact float `==`/`!=` outside designated tolerance helpers |
//! | R3   | no `unwrap()`/`expect()` in library crates outside tests |
//! | R4   | no nondeterminism sources (wall clock, thread identity, env) |
//! | R5   | no `unsafe` anywhere |
//! | R6   | no dense `design_matrix()` materialization in solver-facing code |
//!
//! Violations are suppressed inline with
//! `// rsm-lint: allow(R#) — reason` and every suppression must carry
//! a written reason (audited by rules S0/S1). See DESIGN.md § Static
//! analysis for the full policy.
//!
//! The crate is std-only with a hand-rolled lexer (no `syn`): the
//! build environment is offline and the lint must never be the thing
//! that breaks the build.

#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use diag::{Diagnostic, Report, Rule, Severity};
pub use rules::{FileClass, LIB_CRATES};

use std::path::{Path, PathBuf};

/// Directories under the workspace root that `check` scans by default.
pub const DEFAULT_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

/// Lints the whole workspace rooted at `root` (the directory holding
/// the workspace `Cargo.toml`).
///
/// # Errors
///
/// Returns a message if a scan root exists but cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for sub in DEFAULT_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let rel = relative_label(root, path);
        let class = FileClass::from_path(&rel);
        lint_one(path, &rel, &class, &mut report)?;
    }
    report.sort();
    Ok(report)
}

/// Lints explicitly named files/directories. Every file is treated as
/// library-crate production code (see [`FileClass::lib_context`]), so
/// fixtures exercise all rules wherever they live.
///
/// # Errors
///
/// Returns a message if a path cannot be read.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut report = Report::default();
    let class = FileClass::lib_context();
    for path in &files {
        let rel = path.to_string_lossy().replace('\\', "/");
        lint_one(path, &rel, &class, &mut report)?;
    }
    report.sort();
    Ok(report)
}

/// Walks upward from `start` to find the workspace root (a directory
/// whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn lint_one(path: &Path, rel: &str, class: &FileClass, report: &mut Report) -> Result<(), String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (diags, used) = rules::lint_source(rel, &src, class);
    report.diagnostics.extend(diags);
    report.suppressions_used += used;
    report.files_scanned += 1;
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
