//! `rsm-lint` — workspace static analysis for determinism and
//! numerical-robustness invariants.
//!
//! The paper's central claim (Li, DAC 2009) is that LAR/OMP pull a
//! *deterministic* sparse solution out of an underdetermined system,
//! and PR 1 extended that promise to the runtime: results are
//! bit-identical at any thread count. This crate guards the invariants
//! that make that true *statically*:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | R1   | no unordered-map iteration in result-affecting code |
//! | R2   | no exact float `==`/`!=` outside the `tol` helper module |
//! | R3   | no panic site (`unwrap`/`expect`/`panic!`) reachable from a `pub` fn in a library crate |
//! | R4   | no nondeterminism read (wall clock, thread identity, env) reachable from a `pub` fn, except the `RSM_THREADS` shim |
//! | R5   | no `unsafe` anywhere |
//! | R6   | no path from a matrix-free entry front to `design_matrix()` |
//! | R7   | no accumulation crossing into a parallel worker closure — combine through the in-order fold |
//! | R8   | no magic tolerance literal (0 < \|v\| < 1e-3) in a comparison/guard — name it in `rsm_linalg::tol` or a local `const` |
//! | R9   | no NaN-blind comparison (`partial_cmp().unwrap()`, raw-float sort keys, tainted `==`) |
//!
//! R3/R4/R6 are **interprocedural** (v2): every file is item-parsed
//! ([`parse`]), a workspace call graph is built ([`graph`]), and a
//! diagnostic fires only when a violation site is *reachable* from the
//! rule's root set — with the offending call chain printed. R1/R2/R5
//! remain purely lexical. R7/R8/R9 are **dataflow** rules (v3): each
//! function body is lowered to a statement IR + CFG ([`mod@cfg`]) and a
//! float-taint / constant-propagation fixpoint ([`dataflow`]) drives
//! the sinks — every finding carries a def-use trace (decl → flow →
//! sink). Known findings can be ratcheted via a committed baseline
//! ([`baseline`], `check --baseline FILE`), keyed by rule +
//! fn-qualified path so line drift never churns it.
//!
//! Violations are suppressed inline with
//! `// rsm-lint: allow(R#) — reason` and every suppression must carry
//! a written reason (audited by rules S0/S1). See DESIGN.md § Static
//! analysis for the full policy.
//!
//! The crate is std-only with a hand-rolled lexer (no `syn`): the
//! build environment is offline and the lint must never be the thing
//! that breaks the build.

#![warn(missing_docs)]

pub mod baseline;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod perf;
pub mod rules;
pub mod sarif;
pub mod suppress;

pub use diag::{Diagnostic, Report, Rule, Severity};
pub use graph::{CallGraph, Unit};
pub use rules::{FileClass, LIB_CRATES};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that `check` scans by default.
pub const DEFAULT_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

/// Lexes and item-parses every `.rs` file under the workspace scan
/// roots into [`Unit`]s — phase one of the two-phase pipeline. The
/// call graph and all rules run over the full unit set.
///
/// # Errors
///
/// Returns a message if a scan root exists but cannot be read.
pub fn workspace_units(root: &Path) -> Result<Vec<Unit>, String> {
    let mut files = Vec::new();
    for sub in DEFAULT_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut units = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative_label(root, path);
        let class = FileClass::from_path(&rel);
        units.push(read_unit(path, rel, class)?);
    }
    Ok(units)
}

/// Parses explicitly named files/directories into [`Unit`]s, each
/// treated as library-crate production code (see
/// [`FileClass::lib_context`]) so fixtures exercise all rules
/// wherever they live.
///
/// # Errors
///
/// Returns a message if a path cannot be read.
pub fn path_units(paths: &[PathBuf]) -> Result<Vec<Unit>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut units = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path.to_string_lossy().replace('\\', "/");
        units.push(read_unit(path, rel, FileClass::lib_context())?);
    }
    Ok(units)
}

/// Lints the whole workspace rooted at `root` (the directory holding
/// the workspace `Cargo.toml`).
///
/// # Errors
///
/// Returns a message if a scan root exists but cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    Ok(rules::lint_units(&workspace_units(root)?, |_| true))
}

/// Lints the workspace but **emits** diagnostics only for files
/// changed relative to the git ref `base` (plus untracked files). The
/// whole workspace is still parsed and the full call graph built, so
/// every emitted diagnostic is identical to what a full run would
/// report for that file — `--diff` narrows output, never meaning.
///
/// # Errors
///
/// Returns a message if the tree cannot be read or `git` fails.
pub fn lint_workspace_diff(root: &Path, base: &str) -> Result<Report, String> {
    let changed = git_changed_files(root, base)?;
    let mut report = rules::lint_units(&workspace_units(root)?, |rel| changed.contains(rel));
    report.diff_base = Some(base.to_string());
    Ok(report)
}

/// Lints explicitly named files/directories (fixture/ad-hoc mode).
///
/// # Errors
///
/// Returns a message if a path cannot be read.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Report, String> {
    Ok(rules::lint_units(&path_units(paths)?, |_| true))
}

/// Workspace-relative `.rs` files changed vs `base` (committed or
/// staged changes via `git diff --name-only`, plus untracked files via
/// `git ls-files --others`).
///
/// # Errors
///
/// Returns a message if `git` cannot be spawned or reports failure.
pub fn git_changed_files(root: &Path, base: &str) -> Result<BTreeSet<String>, String> {
    let mut changed = BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", base, "--"],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&args)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let rel = line.trim().replace('\\', "/");
            if rel.ends_with(".rs") {
                changed.insert(rel);
            }
        }
    }
    Ok(changed)
}

/// Walks upward from `start` to find the workspace root (a directory
/// whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn read_unit(path: &Path, rel: String, class: FileClass) -> Result<Unit, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(Unit::new(rel, &src, class))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
