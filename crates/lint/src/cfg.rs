//! Intraprocedural **statement recovery and control-flow graph** — the
//! IR underneath the dataflow rules (R7/R8/R9).
//!
//! The item parser ([`crate::parse`]) leaves function bodies as opaque
//! token ranges. This module recovers a *statement tree* from such a
//! range — `let`/`const` bindings, `if`/`while`/`loop`/`for`/`match`
//! control structure, everything else as opaque expression statements —
//! and lowers it to a small CFG whose joins give the forward dataflow
//! pass ([`crate::dataflow`]) its merge points: branch arms join after
//! the `if`/`match`, loop bodies feed a back edge into their header.
//!
//! Deliberate approximations (documented in DESIGN.md § Dataflow IR):
//!
//! - Expressions stay token ranges; nested control flow *inside* an
//!   expression (a `match` in a `let` initializer) is scanned linearly,
//!   not branch-joined. Linear scanning unions everything, which
//!   over-approximates in the safe direction.
//! - `break`/`continue`/`return` do not cut edges: every loop header
//!   also edges to the loop exit, so code after a loop is always
//!   considered reachable with the loop-body facts joined in.
//! - Pattern binders are recovered heuristically (lowercase-start
//!   identifiers in binding position); path/constructor segments and
//!   struct field names are excluded.

use crate::lexer::Token;

/// Index of a statement in a [`BodyIr`] arena.
pub type StmtId = usize;
/// Index of a block (statement list) in a [`BodyIr`] arena.
pub type BlockId = usize;

/// A half-open token range `[start, end)` into the **code slice** the
/// body was parsed from (comment-free tokens of one fn body).
pub type ExprRange = std::ops::Range<usize>;

/// One `match` arm: binder names introduced by the pattern, the
/// optional guard expression, and the arm body.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Names bound by the arm pattern.
    pub names: Vec<String>,
    /// `if` guard expression, when present.
    pub guard: Option<ExprRange>,
    /// Arm body (expression arms become single-statement blocks).
    pub body: BlockId,
}

/// Statement forms the dataflow pass distinguishes.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let PAT(: TY)? (= INIT)? ;`
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// Initializer expression, when present.
        init: Option<ExprRange>,
    },
    /// `const NAME: TY = INIT;` or `static NAME: TY = INIT;` — a
    /// *named, documented* local constant: rule R8 treats its uses as
    /// sanctioned and its initializer as the definition site.
    Const {
        /// The constant's name.
        name: String,
        /// Initializer expression.
        init: ExprRange,
    },
    /// `if COND { .. } (else ..)?` — the else branch is a block that
    /// may itself hold a single `if` statement (`else if` chains).
    If {
        /// Condition expression.
        cond: ExprRange,
        /// Then branch.
        then_block: BlockId,
        /// Else branch, when present.
        else_block: Option<BlockId>,
    },
    /// `while COND { .. }` (including `while let`).
    While {
        /// Condition expression.
        cond: ExprRange,
        /// Loop body.
        body: BlockId,
    },
    /// `loop { .. }`.
    Loop {
        /// Loop body.
        body: BlockId,
    },
    /// `for PAT in ITER { .. }`.
    For {
        /// Names bound by the loop pattern.
        names: Vec<String>,
        /// Iterated expression.
        iter: ExprRange,
        /// Loop body.
        body: BlockId,
    },
    /// `match SCRUT { arms }`.
    Match {
        /// Scrutinee expression.
        scrutinee: ExprRange,
        /// The arms, in source order.
        arms: Vec<Arm>,
    },
    /// A bare `{ .. }` (or `unsafe { .. }`) block statement.
    BlockStmt {
        /// The nested block.
        body: BlockId,
    },
    /// Any other statement — assignments, calls, tail expressions —
    /// kept as an opaque expression range.
    Expr {
        /// The statement's token range.
        range: ExprRange,
    },
}

/// One recovered statement.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// What kind of statement, with its sub-structure.
    pub kind: StmtKind,
    /// 1-based source line of the statement's first token.
    pub line: u32,
}

/// A list of statements (one lexical block).
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statement ids in source order.
    pub stmts: Vec<StmtId>,
}

/// The recovered statement tree of one function body.
#[derive(Debug, Default)]
pub struct BodyIr {
    /// Statement arena.
    pub stmts: Vec<Stmt>,
    /// Block arena.
    pub blocks: Vec<Block>,
    /// The body's outermost block.
    pub root: BlockId,
}

/// Keywords that can never be pattern binders.
const NON_BINDERS: [&str; 8] = ["mut", "ref", "box", "_", "in", "if", "else", "as"];

/// Collects binder names from a pattern token slice: lowercase-start
/// identifiers in binding position. Identifiers followed by `(`, `::`,
/// `{` or `!` are path/constructor segments; ones followed by `:` are
/// struct field names; uppercase-start identifiers are types/variants.
pub fn pattern_binders(code: &[(usize, &Token)], range: ExprRange) -> Vec<String> {
    let mut names = Vec::new();
    for i in range.clone() {
        let Some(id) = code[i].1.ident() else {
            continue;
        };
        if NON_BINDERS.contains(&id) || id.starts_with(|c: char| c.is_uppercase()) {
            continue;
        }
        if let Some(&(_, next)) = code.get(i + 1) {
            if range.contains(&(i + 1))
                && (next.is_punct("(")
                    || next.is_punct("::")
                    || next.is_punct("{")
                    || next.is_punct("!")
                    || next.is_punct(":"))
            {
                continue;
            }
        }
        if !names.contains(&id.to_string()) {
            names.push(id.to_string());
        }
    }
    names
}

/// Parses the statement tree of one body. `code` must be the
/// comment-free token slice of the body **including** the outer braces
/// (`code[0]` is `{`).
pub fn parse_body(code: &[(usize, &Token)]) -> BodyIr {
    let mut ir = BodyIr::default();
    let mut p = BodyParser { code, ir: &mut ir };
    let root = if code.first().is_some_and(|&(_, t)| t.is_punct("{")) {
        let (b, _) = p.block(1);
        b
    } else {
        // Brace-less range (closure expression bodies): one block.
        let (b, _) = p.stmts_until(0, code.len());
        b
    };
    ir.root = root;
    ir
}

struct BodyParser<'a, 'b> {
    code: &'a [(usize, &'a Token)],
    ir: &'b mut BodyIr,
}

impl BodyParser<'_, '_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&(_, t)| t)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.tok(i).and_then(Token::ident)
    }

    fn line_at(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }

    fn push_stmt(&mut self, kind: StmtKind, line: u32) -> StmtId {
        self.ir.stmts.push(Stmt { kind, line });
        self.ir.stmts.len() - 1
    }

    fn push_block(&mut self, stmts: Vec<StmtId>) -> BlockId {
        self.ir.blocks.push(Block { stmts });
        self.ir.blocks.len() - 1
    }

    /// Advances past one balanced delimiter group if `i` opens one;
    /// otherwise advances one token. Only `()[]{}` nest — `<`/`>` are
    /// comparison operators to this layer.
    fn skip_token_or_group(&self, i: usize) -> usize {
        let Some(t) = self.tok(i) else { return i + 1 };
        for (open, close) in [("(", ")"), ("[", "]"), ("{", "}")] {
            if t.is_punct(open) {
                let mut depth = 0usize;
                let mut j = i;
                while let Some(t) = self.tok(j) {
                    if t.is_punct(open) {
                        depth += 1;
                    } else if t.is_punct(close) {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                    j += 1;
                }
                return j;
            }
        }
        i + 1
    }

    /// Scans from `i` to the first top-level token satisfying `stop`,
    /// skipping balanced groups. Returns the stop index (or EOF).
    fn scan_until(&self, mut i: usize, stop: impl Fn(&Token) -> bool) -> usize {
        while let Some(t) = self.tok(i) {
            if stop(t) {
                return i;
            }
            i = self.skip_token_or_group(i);
        }
        i
    }

    /// Parses a `{ .. }` block starting at the `{` at `i`; returns the
    /// block and the index one past the matching `}`.
    fn block(&mut self, i: usize) -> (BlockId, usize) {
        debug_assert!(self.tok(i.wrapping_sub(1)).is_some_and(|t| t.is_punct("{")));
        let end = self.skip_token_or_group(i - 1); // one past `}`
        let (b, _) = self.stmts_until(i, end.saturating_sub(1));
        (b, end)
    }

    /// Parses statements in `[i, end)`; returns the block and `end`.
    fn stmts_until(&mut self, mut i: usize, end: usize) -> (BlockId, usize) {
        let mut stmts = Vec::new();
        while i < end {
            let (sid, next) = self.stmt(i, end);
            if let Some(sid) = sid {
                stmts.push(sid);
            }
            i = next.max(i + 1);
        }
        (self.push_block(stmts), end)
    }

    /// Parses one statement starting at `i` (bounded by `end`).
    fn stmt(&mut self, i: usize, end: usize) -> (Option<StmtId>, usize) {
        let line = self.line_at(i);
        match self.ident_at(i) {
            Some("let") => self.let_stmt(i, end, line),
            Some("const") | Some("static") => self.const_stmt(i, end, line),
            Some("if") => self.if_stmt(i, end, line),
            Some("while") => {
                let cond_end = self.scan_until(i + 1, |t| t.is_punct("{")).min(end);
                let (body, after) = self.block_or_empty(cond_end);
                let kind = StmtKind::While {
                    cond: i + 1..cond_end,
                    body,
                };
                (Some(self.push_stmt(kind, line)), after)
            }
            Some("loop") => {
                let open = self.scan_until(i + 1, |t| t.is_punct("{")).min(end);
                let (body, after) = self.block_or_empty(open);
                (Some(self.push_stmt(StmtKind::Loop { body }, line)), after)
            }
            Some("for") => self.for_stmt(i, end, line),
            Some("match") => self.match_stmt(i, end, line),
            Some("unsafe") if self.tok(i + 1).is_some_and(|t| t.is_punct("{")) => {
                let (body, after) = self.block_or_empty(i + 1);
                (
                    Some(self.push_stmt(StmtKind::BlockStmt { body }, line)),
                    after,
                )
            }
            _ if self.tok(i).is_some_and(|t| t.is_punct("{")) => {
                let (body, after) = self.block_or_empty(i);
                (
                    Some(self.push_stmt(StmtKind::BlockStmt { body }, line)),
                    after,
                )
            }
            _ if self.tok(i).is_some_and(|t| t.is_punct(";")) => (None, i + 1),
            _ => {
                // Opaque expression statement (assignments included):
                // up to the top-level `;` or the region end.
                let stop = self.scan_until(i, |t| t.is_punct(";")).min(end);
                let kind = StmtKind::Expr { range: i..stop };
                (Some(self.push_stmt(kind, line)), stop + 1)
            }
        }
    }

    /// Parses the `{..}` at `open` (or records an empty block if the
    /// brace is missing/malformed); returns (block, index after).
    fn block_or_empty(&mut self, open: usize) -> (BlockId, usize) {
        if self.tok(open).is_some_and(|t| t.is_punct("{")) {
            self.block(open + 1)
        } else {
            (self.push_block(Vec::new()), open + 1)
        }
    }

    fn let_stmt(&mut self, i: usize, end: usize, line: u32) -> (Option<StmtId>, usize) {
        // Pattern runs to the top-level `:` (type annotation), `=`
        // (initializer) or `;`, whichever comes first.
        let pat_end = self
            .scan_until(i + 1, |t| {
                t.is_punct(":") || t.is_punct("=") || t.is_punct(";")
            })
            .min(end);
        let names = pattern_binders(self.code, i + 1..pat_end);
        let eq = self
            .scan_until(pat_end, |t| t.is_punct("=") || t.is_punct(";"))
            .min(end);
        let stop = self.scan_until(eq, |t| t.is_punct(";")).min(end);
        let init = if self.tok(eq).is_some_and(|t| t.is_punct("=")) && eq + 1 < stop {
            Some(eq + 1..stop)
        } else {
            None
        };
        let kind = StmtKind::Let { names, init };
        (Some(self.push_stmt(kind, line)), stop + 1)
    }

    fn const_stmt(&mut self, i: usize, end: usize, line: u32) -> (Option<StmtId>, usize) {
        let name = self.ident_at(i + 1).unwrap_or_default().to_string();
        let eq = self
            .scan_until(i + 1, |t| t.is_punct("=") || t.is_punct(";"))
            .min(end);
        let stop = self.scan_until(eq, |t| t.is_punct(";")).min(end);
        let init = if self.tok(eq).is_some_and(|t| t.is_punct("=")) {
            eq + 1..stop
        } else {
            eq..eq
        };
        let kind = StmtKind::Const { name, init };
        (Some(self.push_stmt(kind, line)), stop + 1)
    }

    fn if_stmt(&mut self, i: usize, end: usize, line: u32) -> (Option<StmtId>, usize) {
        let cond_end = self.scan_until(i + 1, |t| t.is_punct("{")).min(end);
        let (then_block, mut after) = self.block_or_empty(cond_end);
        let mut else_block = None;
        if self.ident_at(after) == Some("else") && after < end {
            if self.ident_at(after + 1) == Some("if") {
                // `else if`: wrap the chained if in its own block.
                let (sid, next) = self.if_stmt(after + 1, end, self.line_at(after + 1));
                let b = self.push_block(sid.into_iter().collect());
                else_block = Some(b);
                after = next;
            } else {
                let (b, next) = self.block_or_empty(after + 1);
                else_block = Some(b);
                after = next;
            }
        }
        let kind = StmtKind::If {
            cond: i + 1..cond_end,
            then_block,
            else_block,
        };
        (Some(self.push_stmt(kind, line)), after)
    }

    fn for_stmt(&mut self, i: usize, end: usize, line: u32) -> (Option<StmtId>, usize) {
        let in_at = self.scan_until(i + 1, |t| t.ident() == Some("in")).min(end);
        let names = pattern_binders(self.code, i + 1..in_at);
        let iter_end = self.scan_until(in_at, |t| t.is_punct("{")).min(end);
        let (body, after) = self.block_or_empty(iter_end);
        let kind = StmtKind::For {
            names,
            iter: in_at + 1..iter_end,
            body,
        };
        (Some(self.push_stmt(kind, line)), after)
    }

    fn match_stmt(&mut self, i: usize, end: usize, line: u32) -> (Option<StmtId>, usize) {
        let open = self.scan_until(i + 1, |t| t.is_punct("{")).min(end);
        let scrutinee = i + 1..open;
        let match_end = self.skip_token_or_group(open); // one past `}`
        let mut arms = Vec::new();
        let mut j = open + 1;
        let arms_end = match_end.saturating_sub(1);
        while j < arms_end {
            // Pattern (with optional guard) up to `=>` — the lexer does
            // not fuse `=>`, so look for `=` followed by `>`. A solo
            // `=` from a `<=`/`>=` guard is skipped over.
            let pat_start = j;
            let mut arrow = j;
            loop {
                arrow = self.scan_until(arrow, |t| t.is_punct("=")).min(arms_end);
                if arrow >= arms_end || self.tok(arrow + 1).is_some_and(|t| t.is_punct(">")) {
                    break;
                }
                arrow += 1;
            }
            if arrow >= arms_end {
                break; // malformed arm; stop rather than loop
            }
            // Split an `if` guard off the pattern region.
            let guard_at = (pat_start..arrow).find(|&k| self.ident_at(k) == Some("if"));
            let (pat_end, guard) = match guard_at {
                Some(g) => (g, Some(g + 1..arrow)),
                None => (arrow, None),
            };
            let names = pattern_binders(self.code, pat_start..pat_end);
            let body_start = arrow + 2;
            let (body, next) = if self.tok(body_start).is_some_and(|t| t.is_punct("{")) {
                let (b, after) = self.block(body_start + 1);
                // A trailing comma after a block arm is optional.
                let after = if self.tok(after).is_some_and(|t| t.is_punct(",")) {
                    after + 1
                } else {
                    after
                };
                (b, after)
            } else {
                let stop = self
                    .scan_until(body_start, |t| t.is_punct(","))
                    .min(arms_end);
                let sid = self.push_stmt(
                    StmtKind::Expr {
                        range: body_start..stop,
                    },
                    self.line_at(body_start),
                );
                let b = self.push_block(vec![sid]);
                (b, stop + 1)
            };
            arms.push(Arm { names, guard, body });
            j = next.max(j + 1);
        }
        let kind = StmtKind::Match { scrutinee, arms };
        (Some(self.push_stmt(kind, line)), match_end)
    }
}

/// One CFG basic block: a run of statements with its successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Statement ids executed in order within this block. Control
    /// statements (`if`/`while`/...) sit at the end of their block;
    /// their condition/scrutinee/iter expressions are evaluated here,
    /// their bodies live in successor blocks.
    pub stmts: Vec<StmtId>,
    /// Successor basic-block indices.
    pub succs: Vec<usize>,
}

/// Control-flow graph lowered from a [`BodyIr`]: branch arms re-join
/// after their statement, loop bodies carry a back edge to the header,
/// and every loop header also edges past the loop (break/return
/// over-approximation).
#[derive(Debug, Default)]
pub struct Cfg {
    /// Basic blocks; `blocks[entry]` starts the body.
    pub blocks: Vec<BasicBlock>,
    /// Entry block index.
    pub entry: usize,
    /// Exit block index (always empty; every path ends here).
    pub exit: usize,
}

impl Cfg {
    /// Lowers the statement tree to basic blocks.
    pub fn build(ir: &BodyIr) -> Cfg {
        let mut cfg = Cfg::default();
        let entry = cfg.new_block();
        let last = cfg.lower_block(ir, ir.root, entry);
        let exit = cfg.new_block();
        cfg.edge(last, exit);
        cfg.entry = entry;
        cfg.exit = exit;
        cfg
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers one lexical block starting in basic block `cur`; returns
    /// the basic block control falls out of.
    fn lower_block(&mut self, ir: &BodyIr, block: BlockId, mut cur: usize) -> usize {
        for &sid in &ir.blocks[block].stmts {
            cur = self.lower_stmt(ir, sid, cur);
        }
        cur
    }

    /// Lowers one statement; returns the basic block that follows it.
    fn lower_stmt(&mut self, ir: &BodyIr, sid: StmtId, cur: usize) -> usize {
        // Loop statements get a *dedicated* header block: the back edge
        // must re-enter at the loop test, not re-execute whatever
        // straight-line statements happened to precede it (a shared
        // block would replay their strong updates and kill loop-carried
        // facts every fixpoint round).
        let cur = match &ir.stmts[sid].kind {
            StmtKind::While { .. } | StmtKind::Loop { .. } | StmtKind::For { .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                header
            }
            _ => cur,
        };
        self.blocks[cur].stmts.push(sid);
        match &ir.stmts[sid].kind {
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                let join = self.new_block();
                let t_entry = self.new_block();
                self.edge(cur, t_entry);
                let t_exit = self.lower_block(ir, *then_block, t_entry);
                self.edge(t_exit, join);
                match else_block {
                    Some(e) => {
                        let e_entry = self.new_block();
                        self.edge(cur, e_entry);
                        let e_exit = self.lower_block(ir, *e, e_entry);
                        self.edge(e_exit, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            StmtKind::While { body, .. } | StmtKind::Loop { body } | StmtKind::For { body, .. } => {
                // `cur` (holding the header statement) is the loop
                // header: body entry and loop exit both hang off it,
                // and the body's exit loops back.
                let b_entry = self.new_block();
                let after = self.new_block();
                self.edge(cur, b_entry);
                self.edge(cur, after);
                let b_exit = self.lower_block(ir, *body, b_entry);
                self.edge(b_exit, cur);
                after
            }
            StmtKind::Match { arms, .. } => {
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let a_entry = self.new_block();
                    self.edge(cur, a_entry);
                    let a_exit = self.lower_block(ir, arm.body, a_entry);
                    self.edge(a_exit, join);
                }
                join
            }
            StmtKind::BlockStmt { body } => self.lower_block(ir, *body, cur),
            StmtKind::Let { .. } | StmtKind::Const { .. } | StmtKind::Expr { .. } => cur,
        }
    }

    /// Deterministic reverse-post-order-ish iteration order: block
    /// indices ascending (blocks are allocated in source order).
    pub fn block_order(&self) -> impl Iterator<Item = usize> {
        0..self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};

    fn code_of(tokens: &[Token]) -> Vec<(usize, &Token)> {
        tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
            .collect()
    }

    fn ir_of(src: &str) -> (Vec<Token>, BodyIr) {
        let toks = lex(src);
        let ir = parse_body(&code_of(&toks));
        (toks, ir)
    }

    fn kinds(ir: &BodyIr, block: BlockId) -> Vec<&'static str> {
        ir.blocks[block]
            .stmts
            .iter()
            .map(|&s| match ir.stmts[s].kind {
                StmtKind::Let { .. } => "let",
                StmtKind::Const { .. } => "const",
                StmtKind::If { .. } => "if",
                StmtKind::While { .. } => "while",
                StmtKind::Loop { .. } => "loop",
                StmtKind::For { .. } => "for",
                StmtKind::Match { .. } => "match",
                StmtKind::BlockStmt { .. } => "block",
                StmtKind::Expr { .. } => "expr",
            })
            .collect()
    }

    #[test]
    fn statement_forms_are_recovered() {
        let (_t, ir) = ir_of(
            "{ let x = 1.0; const TOL: f64 = 1e-9; if a { b(); } else { c(); }\n\
             for v in xs { use_it(v); } while going { step(); } loop { spin(); }\n\
             match m { Some(v) => v, None => 0.0, } tail() }",
        );
        assert_eq!(
            kinds(&ir, ir.root),
            vec!["let", "const", "if", "for", "while", "loop", "match", "expr"]
        );
    }

    #[test]
    fn let_binders_and_init_ranges() {
        let (_t, ir) = ir_of("{ let (a, b): (f64, f64) = pair(); let mut acc = 0.0; let _ = x; }");
        let StmtKind::Let { names, init } = &ir.stmts[ir.blocks[ir.root].stmts[0]].kind else {
            panic!("let expected");
        };
        assert_eq!(names, &["a", "b"]);
        assert!(init.is_some());
        let StmtKind::Let { names, .. } = &ir.stmts[ir.blocks[ir.root].stmts[1]].kind else {
            panic!("let expected");
        };
        assert_eq!(names, &["acc"], "mut is not a binder");
        let StmtKind::Let { names, .. } = &ir.stmts[ir.blocks[ir.root].stmts[2]].kind else {
            panic!("let expected");
        };
        assert!(names.is_empty(), "_ binds nothing");
    }

    #[test]
    fn pattern_binders_skip_paths_and_fields() {
        let (toks, _) = ir_of("Some(x)");
        let code = code_of(&toks);
        let names = pattern_binders(&code, 0..code.len());
        assert_eq!(names, vec!["x"]);
        let (toks, _) = ir_of("Point { x: px, y }");
        let code = code_of(&toks);
        let names = pattern_binders(&code, 0..code.len());
        assert_eq!(names, vec!["px", "y"]);
    }

    #[test]
    fn for_pattern_and_iter_are_split_at_in() {
        let (toks, ir) = ir_of("{ for (yi, pi) in y.iter_mut().zip(&part) { touch(yi); } }");
        let StmtKind::For { names, iter, .. } = &ir.stmts[ir.blocks[ir.root].stmts[0]].kind else {
            panic!("for expected");
        };
        assert_eq!(names, &["yi", "pi"]);
        let code = code_of(&toks);
        let iter_idents: Vec<&str> = iter.clone().filter_map(|i| code[i].1.ident()).collect();
        assert!(iter_idents.contains(&"y"), "{iter_idents:?}");
        assert!(iter_idents.contains(&"part"), "{iter_idents:?}");
    }

    #[test]
    fn else_if_chains_nest() {
        let (_t, ir) = ir_of("{ if a { x(); } else if b { y(); } else { z(); } }");
        let StmtKind::If { else_block, .. } = &ir.stmts[ir.blocks[ir.root].stmts[0]].kind else {
            panic!("if expected");
        };
        let chained = else_block.expect("else block");
        assert_eq!(kinds(&ir, chained), vec!["if"]);
    }

    #[test]
    fn match_arms_bind_and_guard() {
        let (_t, ir) = ir_of("{ match best { Some((j, v)) if v > w => keep(j), _ => {} } }");
        let StmtKind::Match { arms, .. } = &ir.stmts[ir.blocks[ir.root].stmts[0]].kind else {
            panic!("match expected");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].names, vec!["j", "v"]);
        assert!(arms[0].guard.is_some());
        assert!(arms[1].names.is_empty());
    }

    #[test]
    fn nested_braces_inside_expressions_do_not_split_statements() {
        let (_t, ir) = ir_of("{ let x = if c { 1.0 } else { 2.0 }; after(); }");
        assert_eq!(kinds(&ir, ir.root), vec!["let", "expr"]);
    }

    #[test]
    fn cfg_joins_branches_and_loops() {
        let (_t, ir) = ir_of("{ let a = 1.0; if c { f(); } else { g(); } h(); }");
        let cfg = Cfg::build(&ir);
        // The entry block ends with the `if`; both arms join before h().
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 2, "{cfg:?}");
        // A loop body must edge back to its header.
        let (_t, ir) = ir_of("{ while c { step(); } done(); }");
        let cfg = Cfg::build(&ir);
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.succs.len() == 2)
            .expect("loop header");
        let body = cfg.blocks[header].succs[0];
        assert!(
            cfg.blocks[body].succs.contains(&header),
            "back edge missing: {cfg:?}"
        );
    }

    #[test]
    fn closure_bodies_parse_without_outer_braces() {
        // `parse_body` accepts a brace-less token range (closure with
        // an expression body).
        let toks = lex("acc + x * 2.0");
        let code = code_of(&toks);
        let ir = parse_body(&code);
        assert_eq!(kinds(&ir, ir.root), vec!["expr"]);
    }
}
