//! Performance rules **R10/R11/R12** and the R10 machine-fix
//! synthesizer.
//!
//! Scope: non-test functions in library crates that are call-graph
//! reachable *from* a kernel entry point ([`crate::graph::KERNEL_FNS`]
//! by name, every fn in [`crate::graph::KERNEL_FILES`]) — the hot
//! paths ROADMAP item 1 wants autovectorizer-friendly. Restricting to
//! the kernel cone keeps the rules high-signal: an allocation in a
//! cold config parser is fine; one inside `correlate`'s column loop is
//! a per-iteration tax on a million-atom sweep.
//!
//! - **R10** fires on `for i in LO..HI` loops whose body subscripts
//!   plain-identifier slices affinely in the loop variable (`a[i]`,
//!   `a[i + 1]`, `a[j]` for a `let j = 4 * i;` alias). Indexed form
//!   makes LLVM prove every bounds check before it can vectorize;
//!   lockstep iterators encode the bound once. When the loop variable
//!   is used *only* as a direct subscript (`a[i]`, never `i` as a
//!   value, never an offset) and the bound is a pure expression, the
//!   rule attaches a machine-applicable [`Fix`] rewriting the loop to
//!   `zip` form over `[..HI]` slices — slicing first preserves the
//!   original panic-on-short behavior (`zip` alone would silently
//!   truncate).
//! - **R11** fires on allocation markers (`Vec::new`, `vec![..]`,
//!   `with_capacity`, `.collect()`, `.to_vec()`, `.clone()`, …) inside
//!   any loop body on the kernel cone.
//! - **R12** fires on calls from [`EXPENSIVE_CALLS`] inside a loop
//!   whose receiver and arguments are all loop-invariant (no ident is
//!   written, re-bound, or `&mut`-borrowed anywhere in the loop body,
//!   and none is a loop binder) — the call computes the same value
//!   every iteration and belongs above the loop.
//!
//! R11/R12 are warning-only by design: hoisting an allocation or a
//! call can move a borrow across an iteration boundary, which the
//! token-level engine cannot prove safe. R10's strict machine-fix
//! class is closed under the rewrite (every `i` disappears with the
//! subscripts), which is why only it carries edits.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::body_code;
use crate::diag::{Diagnostic, Fix, Rule};
use crate::graph::{CallGraph, Reach, Unit};
use crate::lexer::{Token, TokenKind};

/// Calls expensive enough that recomputing one per iteration with
/// loop-invariant arguments is a finding (rule R12).
pub const EXPENSIVE_CALLS: [&str; 10] = [
    "dot",
    "norm2",
    "norm2_sq",
    "norm1",
    "norm_inf",
    "column_sq_norms",
    "gram",
    "gram_active",
    "matvec",
    "matvec_t",
];

/// The code slice the pass works over: comment-free `(global token
/// index, token)` pairs of one fn body.
type Code<'a> = [(usize, &'a Token)];

/// The perf rules, run after the dataflow pass over the same units and
/// call graph. `reach_kernel` is `graph.reach(|n| n.is_kernel)`.
pub(crate) fn perf_pass(
    units: &[Unit],
    graph: &CallGraph,
    reach_kernel: &[Reach],
    raw: &mut Vec<Diagnostic>,
) {
    // Same cumulative numbering as CallGraph::build: per unit, one
    // module pseudo-node first, then items in parse order.
    let mut unit_first_item = Vec::with_capacity(units.len());
    let mut next = 0usize;
    for unit in units {
        unit_first_item.push(next + 1);
        next += 1 + unit.items.len();
    }

    let mut seen: BTreeSet<(String, u32, Rule)> = BTreeSet::new();
    for (ui, unit) in units.iter().enumerate() {
        if unit.class.is_test_file || !unit.class.is_lib_crate() {
            continue;
        }
        for (oi, item) in unit.items.iter().enumerate() {
            let Some(body) = item.body else { continue };
            let ni = unit_first_item[ui] + oi;
            let node = &graph.nodes[ni];
            if node.is_test || !reach_kernel[ni].yes() {
                continue;
            }
            let code = body_code(&unit.tokens, body);
            let loops = find_loops(&code, 0, code.len());
            let mut diags = Vec::new();
            for l in &loops {
                check_loop(unit, &code, l, &mut diags);
            }
            for mut d in diags {
                if seen.insert((unit.rel.clone(), d.line, d.rule)) {
                    d.fn_key = Some(node.key.clone());
                    raw.push(d);
                }
            }
        }
    }
}

/// One recovered loop with exact token extents (needed for byte-exact
/// fixes, which the [`crate::cfg`] statement tree does not retain).
#[derive(Debug)]
struct LoopInfo {
    /// Code index of the `for`/`while`/`loop` keyword.
    kw: usize,
    /// For a `for VAR in LO..HI` loop: the single binder name and the
    /// code-index ranges of the bound expressions. `None` for
    /// iterator-style `for`, `while`, and `loop`.
    range: Option<RangeLoop>,
    /// Code index of the body's `{`.
    open: usize,
    /// Code index of the body's matching `}`.
    close: usize,
    /// Loops nested inside this body, in source order.
    nested: Vec<LoopInfo>,
}

#[derive(Debug)]
struct RangeLoop {
    /// The loop variable.
    var: String,
    /// Code-index range of the lower bound expression.
    lo: std::ops::Range<usize>,
    /// Code-index range of the upper bound expression.
    hi: std::ops::Range<usize>,
    /// True for `..=` ranges.
    inclusive: bool,
}

/// Advances past one balanced `()[]{}` group if `i` opens one,
/// otherwise one token (bounded by `hi`).
fn skip_group(code: &Code, i: usize, hi: usize) -> usize {
    let Some(&(_, t)) = code.get(i) else {
        return i + 1;
    };
    for (open, close) in [("(", ")"), ("[", "]"), ("{", "}")] {
        if t.is_punct(open) {
            let mut depth = 0usize;
            let mut j = i;
            while j < hi {
                if code[j].1.is_punct(open) {
                    depth += 1;
                } else if code[j].1.is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return j;
        }
    }
    i + 1
}

/// Scans from `i` to the first top-level token satisfying `stop`,
/// skipping balanced groups; returns `hi` if none.
fn scan_top(code: &Code, mut i: usize, hi: usize, stop: impl Fn(&Token) -> bool) -> usize {
    while i < hi {
        if stop(code[i].1) {
            return i;
        }
        i = skip_group(code, i, hi);
    }
    hi
}

/// Recovers every loop in `[lo, hi)`, recursing into bodies. Linear
/// scan (no group skipping) so loops inside `if` arms, `match` arms
/// and closures are found too.
fn find_loops(code: &Code, lo: usize, hi: usize) -> Vec<LoopInfo> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let parsed = match code[i].1.ident() {
            // `for<'a>` higher-ranked bounds are not loops.
            Some("for") if !code.get(i + 1).is_some_and(|&(_, t)| t.is_punct("<")) => {
                parse_for(code, i, hi)
            }
            Some("while") | Some("loop") => parse_headless(code, i, hi),
            _ => None,
        };
        match parsed {
            Some(l) => {
                let after = l.close + 1;
                out.push(l);
                i = after;
            }
            None => i += 1,
        }
    }
    out
}

/// Finds the matching `}` for the `{` at `open` (bounded by `hi`).
fn match_brace(code: &Code, open: usize, hi: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < hi {
        if code[j].1.is_punct("{") {
            depth += 1;
        } else if code[j].1.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

fn parse_for(code: &Code, kw: usize, hi: usize) -> Option<LoopInfo> {
    let in_at = scan_top(code, kw + 1, hi, |t| {
        t.ident() == Some("in") || t.is_punct("{") || t.is_punct(";")
    });
    if in_at >= hi || code[in_at].1.ident() != Some("in") {
        return None;
    }
    let open = scan_top(code, in_at + 1, hi, |t| t.is_punct("{") || t.is_punct(";"));
    if open >= hi || !code[open].1.is_punct("{") {
        return None;
    }
    let close = match_brace(code, open, hi)?;
    // Single plain-ident binder (`for i in ...`)?
    let var = if in_at == kw + 2 {
        code[kw + 1].1.ident().map(str::to_string)
    } else {
        None
    };
    // `LO..HI` / `LO..=HI` split at the first top-level `.` `.` pair.
    let mut range = None;
    if let Some(var) = var {
        let mut j = in_at + 1;
        while j < open {
            if code[j].1.is_punct(".") && code.get(j + 1).is_some_and(|&(_, t)| t.is_punct(".")) {
                let inclusive = code.get(j + 2).is_some_and(|&(_, t)| t.is_punct("="));
                let hi_start = if inclusive { j + 3 } else { j + 2 };
                range = Some(RangeLoop {
                    var,
                    lo: in_at + 1..j,
                    hi: hi_start..open,
                    inclusive,
                });
                break;
            }
            j = skip_group(code, j, open);
        }
    }
    Some(LoopInfo {
        kw,
        range,
        open,
        close,
        nested: find_loops(code, open + 1, close),
    })
}

fn parse_headless(code: &Code, kw: usize, hi: usize) -> Option<LoopInfo> {
    let open = scan_top(code, kw + 1, hi, |t| t.is_punct("{") || t.is_punct(";"));
    if open >= hi || !code[open].1.is_punct("{") {
        return None;
    }
    let close = match_brace(code, open, hi)?;
    Some(LoopInfo {
        kw,
        range: None,
        open,
        close,
        nested: find_loops(code, open + 1, close),
    })
}

/// Runs R10/R11/R12 on one loop and recurses into nested loops.
fn check_loop(unit: &Unit, code: &Code, l: &LoopInfo, out: &mut Vec<Diagnostic>) {
    check_r10(unit, code, l, out);
    check_r11(unit, code, l, out);
    check_r12(unit, code, l, out);
    for n in &l.nested {
        check_loop(unit, code, n, out);
    }
}

/// One `base[expr]` subscript occurrence in a loop body.
#[derive(Debug)]
struct Subscript {
    /// Code index of the base identifier.
    base_at: usize,
    /// The base identifier text.
    base: String,
    /// Code index of the closing `]`.
    close: usize,
    /// True when the subscript expression is exactly the loop var.
    direct: bool,
}

/// Classifies the subscript content `[lo, hi)` against the loop var
/// and its affine aliases. Returns `(affine, direct)`.
fn classify_subscript(
    code: &Code,
    lo: usize,
    hi: usize,
    var: &str,
    aliases: &BTreeSet<String>,
) -> (bool, bool) {
    let toks: Vec<&Token> = code[lo..hi].iter().map(|&(_, t)| t).collect();
    let is_int = |t: &Token| matches!(t.kind, TokenKind::Number { float: false, .. });
    let is_affine_ident =
        |t: &Token| t.ident() == Some(var) || t.ident().is_some_and(|s| aliases.contains(s));
    match toks.as_slice() {
        // `[i]` / `[j]` for an affine alias j.
        [v] if is_affine_ident(v) => (true, v.ident() == Some(var)),
        // `[i + 3]` / `[i - 1]` / `[j + 1]`.
        [v, op, n] if is_affine_ident(v) && (op.is_punct("+") || op.is_punct("-")) && is_int(n) => {
            (true, false)
        }
        // `[3 + i]`.
        [n, op, v] if is_int(n) && op.is_punct("+") && is_affine_ident(v) => (true, false),
        _ => (false, false),
    }
}

/// Collects `let j = <affine in var>;` aliases declared directly in the
/// loop body: the initializer may use only the loop var, integer
/// literals and `+ - *`.
fn affine_aliases(code: &Code, l: &LoopInfo, var: &str) -> BTreeSet<String> {
    let mut aliases = BTreeSet::new();
    let mut i = l.open + 1;
    while i < l.close {
        if code[i].1.ident() == Some("let")
            && code.get(i + 2).is_some_and(|&(_, t)| t.is_punct("="))
        {
            if let Some(name) = code[i + 1].1.ident() {
                let stop = scan_top(code, i + 3, l.close, |t| t.is_punct(";"));
                let toks = &code[i + 3..stop];
                let mut uses_var = false;
                let affine = !toks.is_empty()
                    && toks.iter().all(|&(_, t)| {
                        if t.ident() == Some(var) {
                            uses_var = true;
                            return true;
                        }
                        matches!(t.kind, TokenKind::Number { float: false, .. })
                            || t.is_punct("+")
                            || t.is_punct("-")
                            || t.is_punct("*")
                    });
                if affine && uses_var {
                    aliases.insert(name.to_string());
                }
                i = stop + 1;
                continue;
            }
        }
        i += 1;
    }
    aliases
}

/// Collects every `base[..]` subscript in the body whose subscript
/// expression is affine in the loop var (directly or via an alias).
/// The base must be a plain identifier (not a field or path segment).
fn affine_subscripts(
    code: &Code,
    l: &LoopInfo,
    var: &str,
    aliases: &BTreeSet<String>,
) -> Vec<Subscript> {
    let mut subs = Vec::new();
    let mut i = l.open + 1;
    while i < l.close {
        let base_ok = code[i].1.ident().is_some_and(|s| s != var)
            && code.get(i + 1).is_some_and(|&(_, t)| t.is_punct("["))
            && !code
                .get(i.wrapping_sub(1))
                .is_some_and(|&(_, t)| t.is_punct(".") || t.is_punct("::"));
        if base_ok {
            let close = skip_group(code, i + 1, l.close) - 1;
            if close > i + 1 && close < l.close && code[close].1.is_punct("]") {
                let (affine, direct) = classify_subscript(code, i + 2, close, var, aliases);
                if affine {
                    subs.push(Subscript {
                        base_at: i,
                        base: code[i].1.ident().unwrap_or_default().to_string(),
                        close,
                        direct,
                    });
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    subs
}

/// R10: indexed loop with affine subscripts. Attaches a machine fix
/// when the strict direct-subscript conditions hold.
fn check_r10(unit: &Unit, code: &Code, l: &LoopInfo, out: &mut Vec<Diagnostic>) {
    let Some(range) = &l.range else { return };
    let var = range.var.as_str();
    let aliases = affine_aliases(code, l, var);
    let subs = affine_subscripts(code, l, var, &aliases);
    if subs.is_empty() {
        return;
    }
    let mut bases: Vec<String> = Vec::new();
    for s in &subs {
        if !bases.contains(&s.base) {
            bases.push(s.base.clone());
        }
    }
    let line = code[l.kw].1.line;
    let fix = synthesize_fix(unit, code, l, range, &subs, &bases);
    let listed = bases
        .iter()
        .map(|b| format!("`{b}`"))
        .collect::<Vec<_>>()
        .join(", ");
    let message = if fix.is_some() {
        format!(
            "indexed loop over {listed} subscripted by the loop variable; per-element \
             bounds checks block autovectorization — a machine fix rewriting to \
             lockstep `[..bound]` slice iteration is attached (`rsm-lint fix`)"
        )
    } else {
        format!(
            "indexed loop over {listed} with subscripts affine in `{var}`; per-element \
             bounds checks block autovectorization — rewrite to iter/zip/chunks_exact \
             form by hand (the loop shape is outside the machine-fixable class)"
        )
    };
    out.push(Diagnostic {
        file: unit.rel.clone(),
        line,
        rule: Rule::R10,
        message,
        chain: Vec::new(),
        trace: Vec::new(),
        fn_key: None,
        fix,
    });
}

/// Builds the machine fix for the strict R10 class, or `None` when any
/// safety condition fails:
///
/// 1. `for VAR in LO..HI` — exclusive range;
/// 2. straight-line body: no nested loops, no nested `{}` blocks
///    (every subscript executes on every iteration);
/// 3. every subscript is the direct `base[VAR]` form;
/// 4. every occurrence of `VAR` in the body is such a subscript;
/// 5. every occurrence of each base in the body is such a subscript
///    (no `&mut base[VAR]`, no `base.len()` mid-loop);
/// 6. `LO` and `HI` are pure expressions (idents, integers,
///    `. ( ) + - * / ::`, calls only to `len`/`rows`/`cols`/`min`/
///    `max`), since the rewrite repeats them once per slice;
/// 7. the generated `<base>_it` names collide with nothing in scope.
fn synthesize_fix(
    unit: &Unit,
    code: &Code,
    l: &LoopInfo,
    range: &RangeLoop,
    subs: &[Subscript],
    bases: &[String],
) -> Option<Fix> {
    let var = range.var.as_str();
    if range.inclusive || !l.nested.is_empty() {
        return None;
    }
    // No nested blocks: with a straight-line body every subscript
    // executes on every iteration, so moving the bounds check to the
    // slice at loop entry panics iff the loop would have panicked
    // (just earlier, before any partial writes). A subscript hidden
    // behind an `if` could turn a never-taken branch into a panic.
    if code[l.open + 1..l.close].iter().any(|c| c.1.is_punct("{")) {
        return None;
    }
    if range.lo.is_empty() || range.hi.is_empty() || !subs.iter().all(|s| s.direct) {
        return None;
    }
    // Both bounds must be pure expressions: the rewrite repeats them in
    // every slice, so a side-effecting bound would change behavior.
    const PURE_CALLS: [&str; 5] = ["len", "rows", "cols", "min", "max"];
    for j in range.lo.clone().chain(range.hi.clone()) {
        let t = code[j].1;
        let ok = match &t.kind {
            TokenKind::Ident(s) => {
                !code.get(j + 1).is_some_and(|&(_, n)| n.is_punct("("))
                    || PURE_CALLS.contains(&s.as_str())
            }
            TokenKind::Number { float, .. } => !float,
            TokenKind::Punct(p) => [".", "(", ")", "+", "-", "*", "/", "::"].contains(&p.as_str()),
            _ => false,
        };
        if !ok {
            return None;
        }
    }
    // Every VAR / base occurrence must be inside a direct subscript,
    // and no subscript may sit behind a `&mut` borrow (the zipped
    // element reference already is the borrow).
    let inside_sub = |j: usize| subs.iter().any(|s| j >= s.base_at && j <= s.close);
    for (j, c) in code.iter().enumerate().take(l.close).skip(l.open + 1) {
        let Some(id) = c.1.ident() else {
            continue;
        };
        if (id == var || bases.contains(&id.to_string())) && !inside_sub(j) {
            return None;
        }
    }
    for s in subs {
        if code
            .get(s.base_at.wrapping_sub(1))
            .is_some_and(|&(_, t)| t.ident() == Some("mut"))
        {
            return None;
        }
    }
    // Written vs read-only bases (`a[i] = ...`, `a[i] += ...`).
    let mut written: BTreeSet<&str> = BTreeSet::new();
    for s in subs {
        let next = code.get(s.close + 1).map(|&(_, t)| t);
        let next2 = code.get(s.close + 2).map(|&(_, t)| t);
        let assign = next.is_some_and(|t| t.is_punct("="))
            || (next.is_some_and(|t| {
                t.is_punct("+") || t.is_punct("-") || t.is_punct("*") || t.is_punct("/")
            }) && next2.is_some_and(|t| t.is_punct("=")));
        if assign {
            written.insert(s.base.as_str());
        }
    }
    // Fresh iterator names.
    let names: BTreeMap<&str, String> = bases
        .iter()
        .map(|b| (b.as_str(), format!("{b}_it")))
        .collect();
    for c in code {
        if let Some(id) = c.1.ident() {
            if names.values().any(|n| n == id) {
                return None;
            }
        }
    }
    // Iterator chain and lockstep pattern, in first-occurrence order.
    // Slicing each base to the range first (`base[LO..HI]`, `[..HI]`
    // for a zero lower bound) keeps the original panic on a too-short
    // slice — `zip` alone would silently truncate.
    let hi_text = token_text(unit, code, range.hi.start, range.hi.end - 1);
    let lo_is_zero = range.lo.len() == 1 && code[range.lo.start].1.num_text() == Some("0");
    let slice = if lo_is_zero {
        format!("[..{hi_text}]")
    } else {
        let lo_text = token_text(unit, code, range.lo.start, range.lo.end - 1);
        format!("[{lo_text}..{hi_text}]")
    };
    let mut chain = String::new();
    let mut pattern = String::new();
    for (k, b) in bases.iter().enumerate() {
        let name = &names[b.as_str()];
        let is_mut = written.contains(b.as_str());
        if k == 0 {
            chain = if is_mut {
                format!("{b}{slice}.iter_mut()")
            } else {
                format!("{b}{slice}.iter()")
            };
            pattern = name.clone();
        } else {
            chain.push_str(&if is_mut {
                format!(".zip({b}{slice}.iter_mut())")
            } else {
                format!(".zip(&{b}{slice})")
            });
            pattern = format!("({pattern}, {name})");
        }
    }
    // Rewrite the body: splice each subscript span (byte-exact, back to
    // front so earlier offsets stay valid). A subscript that is the
    // target of an assignment becomes `*name`; any other position gets
    // the parenthesized `(*name)` so postfix `.`/operators keep their
    // binding.
    let body_start = code[l.open].1.span.1;
    let body_end = code[l.close].1.span.0;
    let mut body = unit.src.get(body_start..body_end)?.to_string();
    let mut ordered: Vec<&Subscript> = subs.iter().collect();
    ordered.sort_by_key(|s| code[s.base_at].1.span.0);
    for s in ordered.iter().rev() {
        let next = code.get(s.close + 1).map(|&(_, t)| t);
        let next2 = code.get(s.close + 2).map(|&(_, t)| t);
        let assign_target = next.is_some_and(|t| t.is_punct("="))
            || (next.is_some_and(|t| {
                t.is_punct("+") || t.is_punct("-") || t.is_punct("*") || t.is_punct("/")
            }) && next2.is_some_and(|t| t.is_punct("=")));
        let name = &names[s.base.as_str()];
        let text = if assign_target {
            format!("*{name}")
        } else {
            format!("(*{name})")
        };
        let a = code[s.base_at].1.span.0.checked_sub(body_start)?;
        let b = code[s.close].1.span.1.checked_sub(body_start)?;
        body.replace_range(a..b, &text);
    }
    let replacement = format!("for {pattern} in {chain} {{{body}}}");
    Some(Fix {
        span: (code[l.kw].1.span.0, code[l.close].1.span.1),
        replacement,
    })
}

/// Source text covering code tokens `[first, last]` (byte-exact).
fn token_text(unit: &Unit, code: &Code, first: usize, last: usize) -> String {
    unit.src[code[first].1.span.0..code[last].1.span.1].to_string()
}

/// Idents bound to `Vec::with_capacity(..)` anywhere in the fn body —
/// growth via `.push` into a preallocated buffer is the sanctioned
/// R11 idiom (it does not reallocate within capacity), so those
/// receivers are exempt.
fn preallocated_names(code: &Code) -> BTreeSet<String> {
    let mut pre = BTreeSet::new();
    for w in 0..code.len().saturating_sub(4) {
        if code[w + 1].1.is_punct("=")
            && code[w + 2].1.ident() == Some("Vec")
            && code[w + 3].1.is_punct("::")
            && code[w + 4].1.ident() == Some("with_capacity")
        {
            if let Some(id) = code[w].1.ident() {
                pre.insert(id.to_string());
            }
        }
    }
    pre
}

/// R11: allocation markers inside a loop body.
fn check_r11(unit: &Unit, code: &Code, l: &LoopInfo, out: &mut Vec<Diagnostic>) {
    let pre = preallocated_names(code);
    let mut hits: Vec<(u32, String)> = Vec::new();
    let mut i = l.open + 1;
    while i < l.close {
        let t = code[i].1;
        let next = code.get(i + 1).map(|&(_, t)| t);
        let next2 = code.get(i + 2).map(|&(_, t)| t);
        let hit = match t.ident() {
            Some(ty @ ("Vec" | "String" | "Box" | "BTreeMap" | "BTreeSet"))
                if next.is_some_and(|n| n.is_punct("::"))
                    && next2.is_some_and(|n| {
                        matches!(
                            n.ident(),
                            Some("new") | Some("with_capacity") | Some("from")
                        )
                    }) =>
            {
                Some(format!(
                    "`{ty}::{}`",
                    next2.and_then(Token::ident).unwrap_or_default()
                ))
            }
            Some(mac @ ("vec" | "format")) if next.is_some_and(|n| n.is_punct("!")) => {
                Some(format!("`{mac}!`"))
            }
            Some(m @ ("collect" | "to_vec" | "to_string" | "clone" | "to_owned" | "push"))
                if code
                    .get(i.wrapping_sub(1))
                    .is_some_and(|&(_, p)| p.is_punct("."))
                    && next.is_some_and(|n| n.is_punct("(") || n.is_punct("::")) =>
            {
                let recv = code
                    .get(i.wrapping_sub(2))
                    .and_then(|&(_, r)| r.ident())
                    .unwrap_or_default();
                if m == "push" && pre.contains(recv) {
                    None
                } else {
                    Some(format!("`.{m}()`"))
                }
            }
            _ => None,
        };
        if let Some(what) = hit {
            if !hits.iter().any(|(ln, _)| *ln == t.line) {
                hits.push((t.line, what));
            }
        }
        i += 1;
    }
    for (line, what) in hits {
        out.push(Diagnostic {
            file: unit.rel.clone(),
            line,
            rule: Rule::R11,
            message: format!(
                "{what} allocates inside a loop body on a kernel-reachable hot path; \
                 hoist the buffer out of the loop and reuse it per iteration"
            ),
            chain: Vec::new(),
            trace: Vec::new(),
            fn_key: None,
            fix: None,
        });
    }
}

/// Names written, re-bound or `&mut`-borrowed anywhere in the loop
/// body, plus all loop binders (this loop and nested ones) — anything
/// *not* in this set is loop-invariant to the token-level analysis.
fn mutated_names(code: &Code, l: &LoopInfo) -> BTreeSet<String> {
    let mut m = BTreeSet::new();
    collect_binders(code, l, &mut m);
    let mut i = l.open + 1;
    while i < l.close {
        let t = code[i].1;
        // `let` re-binding: every ident in the pattern region.
        if t.ident() == Some("let") {
            let stop = scan_top(code, i + 1, l.close, |t| {
                t.is_punct("=") || t.is_punct(":") || t.is_punct(";")
            });
            for c in &code[i + 1..stop] {
                if let Some(id) = c.1.ident() {
                    m.insert(id.to_string());
                }
            }
            i = stop;
            continue;
        }
        // `&mut x` borrow.
        if t.is_punct("&")
            && code
                .get(i + 1)
                .is_some_and(|&(_, n)| n.ident() == Some("mut"))
        {
            if let Some(id) = code.get(i + 2).and_then(|&(_, n)| n.ident()) {
                m.insert(id.to_string());
            }
        }
        // Receiver of a method call that is not known-pure: `x.push(v)`
        // mutates `x` through an implicit `&mut` the token stream never
        // shows, so treat the receiver as possibly-mutated. Query
        // methods (`len`, `iter`, ...) and the expensive calls
        // themselves stay invariant-preserving.
        const PURE_METHODS: [&str; 12] = [
            "len", "is_empty", "iter", "rows", "cols", "row", "col", "min", "max", "abs", "sqrt",
            "get",
        ];
        if t.ident().is_some()
            && code.get(i + 1).is_some_and(|&(_, n)| n.is_punct("."))
            && code.get(i + 3).is_some_and(|&(_, n)| n.is_punct("("))
        {
            if let Some(method) = code.get(i + 2).and_then(|&(_, n)| n.ident()) {
                if !PURE_METHODS.contains(&method) && !EXPENSIVE_CALLS.contains(&method) {
                    m.insert(t.ident().unwrap_or_default().to_string());
                }
            }
        }
        // Assignment / compound assignment: root ident on the left of
        // a top-level `=` (the lexer fuses `==`/`!=`, and `<=`/`>=`
        // lex as two puncts — exclude those and `=>` arms).
        if t.is_punct("=")
            && !code
                .get(i.wrapping_sub(1))
                .is_some_and(|&(_, p)| p.is_punct("<") || p.is_punct(">"))
            && !code.get(i + 1).is_some_and(|&(_, n)| n.is_punct(">"))
        {
            // Walk back over the place expression to its root ident.
            let mut j = i;
            while j > l.open + 1 {
                let p = code[j - 1].1;
                let part_of_place = p.ident().is_some()
                    || p.is_punct(".")
                    || p.is_punct("]")
                    || p.is_punct("[")
                    || p.is_punct("*")
                    || p.is_punct(")")
                    || p.is_punct("(")
                    || matches!(p.kind, TokenKind::Number { .. })
                    || ["+", "-", "/"].iter().any(|op| p.is_punct(op));
                if !part_of_place {
                    break;
                }
                j -= 1;
            }
            if let Some(id) = code.get(j).and_then(|&(_, n)| n.ident()) {
                m.insert(id.to_string());
            }
        }
        i += 1;
    }
    m
}

fn collect_binders(code: &Code, l: &LoopInfo, m: &mut BTreeSet<String>) {
    if let Some(r) = &l.range {
        m.insert(r.var.clone());
    } else if code[l.kw].1.ident() == Some("for") {
        // Iterator-style binders: idents between `for` and `in`.
        let in_at = scan_top(code, l.kw + 1, l.open, |t| t.ident() == Some("in"));
        for c in &code[l.kw + 1..in_at] {
            if let Some(id) = c.1.ident() {
                if id != "mut" && id != "ref" {
                    m.insert(id.to_string());
                }
            }
        }
    }
    for n in &l.nested {
        collect_binders(code, n, m);
    }
}

/// R12: expensive call with all-invariant receiver and arguments
/// inside a loop body.
fn check_r12(unit: &Unit, code: &Code, l: &LoopInfo, out: &mut Vec<Diagnostic>) {
    let mutated = mutated_names(code, l);
    let mut i = l.open + 1;
    while i < l.close {
        let t = code[i].1;
        let callee = t.ident().filter(|s| EXPENSIVE_CALLS.contains(s));
        let is_call = callee.is_some() && code.get(i + 1).is_some_and(|&(_, n)| n.is_punct("("));
        if !is_call {
            i += 1;
            continue;
        }
        let callee = callee.unwrap_or_default();
        let args_end = skip_group(code, i + 1, l.close);
        // Receiver chain (for `recv.dot(..)` forms): idents reachable
        // leftward over `.`/`::`/ident tokens.
        let mut idents: Vec<String> = Vec::new();
        let mut j = i;
        while j > l.open + 1 {
            let p = code[j - 1].1;
            if p.is_punct(".") || p.is_punct("::") || p.ident().is_some() {
                if let Some(id) = p.ident() {
                    idents.push(id.to_string());
                }
                j -= 1;
            } else {
                break;
            }
        }
        // Argument idents. A call with a closure argument is skipped
        // (the closure body may capture loop state invisibly).
        let mut has_closure = false;
        for c in &code[i + 2..args_end.saturating_sub(1).max(i + 2)] {
            if c.1.is_punct("|") {
                has_closure = true;
            }
            if let Some(id) = c.1.ident() {
                idents.push(id.to_string());
            }
        }
        let invariant = !has_closure && idents.iter().all(|id| !mutated.contains(id));
        if invariant {
            out.push(Diagnostic {
                file: unit.rel.clone(),
                line: t.line,
                rule: Rule::R12,
                message: format!(
                    "`{callee}(..)` is called inside a loop with loop-invariant \
                     receiver and arguments; it recomputes the same value every \
                     iteration — hoist the call above the loop"
                ),
                chain: Vec::new(),
                trace: Vec::new(),
                fn_key: None,
                fix: None,
            });
        }
        i = args_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileClass;

    fn unit_of(src: &str) -> Unit {
        Unit::new("crates/linalg/src/vec_ops.rs".into(), src, {
            let mut c = FileClass::lib_context();
            c.explicit = false;
            c
        })
    }

    fn code_of(unit: &Unit) -> Vec<(usize, &Token)> {
        unit.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
            .collect()
    }

    fn loops_of<'a>(code: &'a [(usize, &'a Token)]) -> Vec<LoopInfo> {
        find_loops(code, 0, code.len())
    }

    #[test]
    fn loop_extents_and_nesting_are_recovered() {
        let u = unit_of("{ for i in 0..n { if c { while going { step(); } } } after(); }");
        let code = code_of(&u);
        let loops = loops_of(&code);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].nested.len(), 1);
        let r = loops[0].range.as_ref().expect("range loop");
        assert_eq!(r.var, "i");
        assert!(!r.inclusive);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let u = unit_of("{ let f: &dyn for<'a> Fn(&'a f64) = &|_| (); f(&1.0); }");
        let code = code_of(&u);
        assert!(loops_of(&code).is_empty());
    }

    fn diags_of(src: &str) -> Vec<Diagnostic> {
        let u = unit_of(src);
        let code = code_of(&u);
        let mut out = Vec::new();
        for l in loops_of(&code) {
            check_loop(&u, &code, &l, &mut out);
        }
        out
    }

    #[test]
    fn r10_direct_subscripts_get_a_fix() {
        let src = "{ for i in 0..n { y[i] = a * x[i] + y[i]; } }";
        let ds = diags_of(src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::R10);
        let fix = ds[0].fix.as_ref().expect("machine fix");
        assert_eq!(
            fix.replacement,
            "for (y_it, x_it) in y[..n].iter_mut().zip(&x[..n]) \
             {{ *y_it = a * (*x_it) + (*y_it); }}"
                .replace("{{", "{")
                .replace("}}", "}")
        );
    }

    #[test]
    fn r10_value_use_of_loop_var_is_warn_only() {
        // `i` used as a value (not just a subscript) — no machine fix.
        let ds = diags_of("{ for i in 0..n { y[i] = i as f64 * x[i]; } }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::R10);
        assert!(ds[0].fix.is_none());
    }

    #[test]
    fn r10_affine_alias_fires_without_fix() {
        // The unrolled-dot shape: `let j = 4 * i;` then `x[j + 1]`.
        let ds = diags_of("{ for i in 0..chunks { let j = 4 * i; s += x[j] * x[j + 1]; } }");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none());
    }

    #[test]
    fn r10_pure_nonzero_lower_bound_gets_a_sliced_fix() {
        // The dot tail-loop shape: pure nonzero lower bound.
        let ds = diags_of("{ for j in 4 * chunks..n { s += x[j] * y[j]; } }");
        assert_eq!(ds.len(), 1);
        let fix = ds[0].fix.as_ref().expect("machine fix");
        assert_eq!(
            fix.replacement,
            "for (x_it, y_it) in x[4 * chunks..n].iter().zip(&y[4 * chunks..n]) \
             { s += (*x_it) * (*y_it); }"
        );
    }

    #[test]
    fn r10_conditional_subscript_blocks_the_fix() {
        // A subscript behind an `if` may never execute; slicing up
        // front could panic where the original loop did not.
        let ds = diags_of("{ for i in 0..n { if keep { y[i] = x[i]; } } }");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none());
    }

    #[test]
    fn r10_ignores_iterator_loops_and_field_bases() {
        assert!(diags_of("{ for (a, b) in x.iter().zip(&y) { s += a * b; } }").is_empty());
        assert!(diags_of("{ for i in 0..n { s += self.data[i * cols + k]; } }").is_empty());
        assert!(diags_of("{ for i in 0..n { m[(i, i)] = 1.0; } }").is_empty());
    }

    #[test]
    fn r10_impure_bound_blocks_the_fix() {
        let ds = diags_of("{ for i in 0..q.pop().unwrap() { y[i] = x[i]; } }");
        assert_eq!(ds.len(), 1);
        assert!(
            ds[0].fix.is_none(),
            "side-effecting bound must not be duplicated"
        );
    }

    #[test]
    fn r11_flags_allocations_in_loops_only() {
        let ds =
            diags_of("{ let mut v = Vec::new(); for c in cols { let t = v.clone(); use_it(t); } }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::R11);
        assert!(ds[0].message.contains("clone"));
        assert!(diags_of("{ let mut v = Vec::new(); v.push(1.0); }").is_empty());
    }

    #[test]
    fn r12_invariant_expensive_call_fires() {
        let ds = diags_of("{ while step < max { let g = norm2(residual); walk(g); step += 1; } }");
        assert!(ds.iter().any(|d| d.rule == Rule::R12), "{ds:?}");
    }

    #[test]
    fn r12_variant_args_do_not_fire() {
        // `a`/`b` are loop binders; `r` is rewritten in the body.
        let ds = diags_of("{ for a in 0..p { let s = dot(cols, a); touch(s); } }");
        assert!(ds.iter().all(|d| d.rule != Rule::R12), "{ds:?}");
        let ds = diags_of("{ while going { r = update(r); let g = norm2(r); keep(g); } }");
        assert!(ds.iter().all(|d| d.rule != Rule::R12), "{ds:?}");
    }
}
