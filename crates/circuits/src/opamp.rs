//! Two-stage Miller-compensated operational amplifier (Fig. 3 of the
//! paper), simulated at transistor level.
//!
//! Topology: NMOS differential pair (M1/M2) with PMOS current-mirror
//! load (M3/M4), NMOS tail source (M5), PMOS common-source second
//! stage (M6) with NMOS current-sink load (M7), on-chip bias branch
//! (resistor + diode-connected M8), Miller capacitor and capacitive
//! load. DC bias is established through a 10 MΩ feedback resistor from
//! the output to the inverting input, decoupled by a large capacitor —
//! the classical trick that closes the loop at DC (well-defined
//! operating point, direct offset readout) while leaving it open for
//! the AC gain/bandwidth measurement.
//!
//! Variation space: **630** independent standard-normal variables —
//! 6 global (inter-die) factors, 24 per-device mismatch factors
//! (12 devices × {ΔV_th, Δβ}), and 600 fine-grained layout-parasitic
//! factors that weakly modulate node capacitances and the bias
//! resistor. This matches the paper's "630 independent random
//! variables … extracted after PCA".

use crate::variation::{DeviceSigmas, DeviceVariation, ParasiticSensitivity};
use crate::PerformanceCircuit;
use rsm_spice::ac::{log_sweep, AcAnalysis};
use rsm_spice::dc::DcAnalysis;
use rsm_spice::measure;
use rsm_spice::mosfet::{MosParams, MosType};
use rsm_spice::netlist::Circuit;

/// Number of transistors + the bias resistor carrying mismatch.
const NUM_DEVICES: usize = 12;
/// Global factor indices.
const G_VTH_N: usize = 0;
const G_BETA_N: usize = 1;
const G_VTH_P: usize = 2;
const G_BETA_P: usize = 3;
const G_RES: usize = 4;
const G_CAP: usize = 5;
const NUM_GLOBALS: usize = 6;
/// Local mismatch block: 12 devices × 2 factors.
const LOCAL_BASE: usize = NUM_GLOBALS;
const NUM_LOCALS: usize = 2 * NUM_DEVICES;
/// Fine-grained parasitic block.
const PARA_BASE: usize = LOCAL_BASE + NUM_LOCALS;
const NUM_PARA: usize = 600;
/// Total variation dimension — the paper's 630.
pub const OPAMP_NUM_VARS: usize = NUM_GLOBALS + NUM_LOCALS + NUM_PARA;

/// The four modeled metrics, in the paper's order (Fig. 4 a–d).
pub const OPAMP_METRICS: [&str; 4] = ["gain", "bandwidth", "power", "offset"];

/// Performance sample of the OpAmp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpPerf {
    /// Open-loop low-frequency voltage gain (dB).
    pub gain: f64,
    /// −3 dB bandwidth (Hz).
    pub bandwidth: f64,
    /// Static supply power (W).
    pub power: f64,
    /// Input-referred offset deviation from nominal (V).
    pub offset: f64,
}

/// The two-stage OpAmp benchmark.
///
/// # Example
///
/// ```
/// use rsm_circuits::{OpAmp, PerformanceCircuit};
/// let amp = OpAmp::new();
/// assert_eq!(amp.num_vars(), 630);
/// let nominal = amp.evaluate(&vec![0.0; 630]);
/// assert!(nominal[0] > 40.0); // healthy open-loop gain in dB
/// ```
#[derive(Debug, Clone)]
pub struct OpAmp {
    /// Nominal closed-loop DC output voltage (offset reference).
    nominal_vout: f64,
    /// AC sweep grid reused across samples.
    freqs: Vec<f64>,
}

/// Nominal element values.
const VDD: f64 = 1.2;
const VCM: f64 = 0.7;
const R_BIAS: f64 = 33_500.0;
const C_MILLER: f64 = 0.5e-12;
const C_LOAD: f64 = 1.0e-12;
const R_FB: f64 = 10e6;
const C_FB: f64 = 100e-6;
/// Parasitic node capacitance nominal (F).
const C_PAR: f64 = 5e-15;

fn nmos(w_over_l: f64) -> MosParams {
    MosParams {
        mos_type: MosType::Nmos,
        vth0: 0.35,
        kp: 300e-6,
        lambda: 0.10,
        w: w_over_l * 130e-9,
        l: 130e-9,
    }
}

fn pmos(w_over_l: f64) -> MosParams {
    MosParams {
        mos_type: MosType::Pmos,
        vth0: 0.35,
        kp: 120e-6,
        lambda: 0.15,
        w: w_over_l * 130e-9,
        l: 130e-9,
    }
}

/// Applies a mismatch delta to a model card.
fn perturb(mut p: MosParams, dvth: f64, dbeta_rel: f64) -> MosParams {
    p.vth0 += dvth;
    p.kp *= (1.0 + dbeta_rel).max(0.05);
    p
}

impl OpAmp {
    /// Builds the benchmark with its default AC grid (1 kHz – 10 MHz).
    pub fn new() -> Self {
        let freqs = log_sweep(1e3, 1e7, 10);
        let mut amp = OpAmp {
            nominal_vout: 0.0,
            freqs,
        };
        // Nominal closed-loop output for the offset reference.
        let dy = vec![0.0; OPAMP_NUM_VARS];
        let (_, vout) = amp
            .simulate(&dy)
            // rsm-lint: allow(R3) — nominal-point simulation failing means the fixed testbench itself is broken; unrecoverable by the caller
            .expect("nominal OpAmp must simulate cleanly");
        amp.nominal_vout = vout.offset_raw;
        amp
    }

    /// Evaluates the four metrics at a variation sample.
    ///
    /// Returns `None` if the perturbed sample fails to converge (does
    /// not happen for N(0, I) draws at the calibrated sigmas; exposed
    /// for robustness tests).
    pub fn try_evaluate(&self, dy: &[f64]) -> Option<OpAmpPerf> {
        assert_eq!(dy.len(), OPAMP_NUM_VARS, "OpAmp expects 630 variables");
        let (perf, raw) = self.simulate(dy).ok()?;
        Some(OpAmpPerf {
            offset: raw.offset_raw - self.nominal_vout,
            ..perf
        })
    }

    fn device_variation(&self, idx: usize, is_pmos: bool) -> DeviceVariation {
        DeviceVariation {
            global_vth: if is_pmos { G_VTH_P } else { G_VTH_N },
            global_beta: if is_pmos { G_BETA_P } else { G_BETA_N },
            local_base: LOCAL_BASE + 2 * idx,
            sigmas: DeviceSigmas::analog_65nm(),
        }
    }

    /// Builds and simulates the perturbed netlist.
    fn simulate(&self, dy: &[f64]) -> rsm_spice::Result<(OpAmpPerf, RawDc)> {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let tail = ckt.node("tail");
        let d1 = ckt.node("d1"); // mirror diode node (drain of M1/M3)
        let out1 = ckt.node("out1"); // first-stage output (drain of M2/M4)
        let out = ckt.node("out");
        let bias = ckt.node("bias");

        let vdd_src = ckt.vsource(vdd, Circuit::GROUND, VDD);
        ckt.vsource_ac(inp, Circuit::GROUND, VCM, 1.0);

        // Device mismatch draws.
        let dev = |i: usize, p: bool| self.device_variation(i, p).apply(dy);
        let d_m1 = dev(0, false);
        let d_m2 = dev(1, false);
        let d_m3 = dev(2, true);
        let d_m4 = dev(3, true);
        let d_m5 = dev(4, false);
        let d_m6 = dev(5, true);
        let d_m7 = dev(6, false);
        let d_m8 = dev(7, false);
        // Devices 8..11: reserved slots (dummies / bias cascodes in the
        // full layout); they participate in the variation space so the
        // dictionary contains genuinely irrelevant variables.

        // Bias resistor: global + parasitic window variation.
        let r_shift = 0.05 * dy[G_RES]
            + ParasiticSensitivity {
                base: PARA_BASE,
                count: 40,
                sigma_rel: 0.01,
                seed: 100,
            }
            .relative_shift(dy);
        ckt.resistor(vdd, bias, R_BIAS * (1.0 + r_shift).max(0.3));

        // Bias diode M8 and mirrors.
        ckt.mosfet(
            bias,
            bias,
            Circuit::GROUND,
            perturb(nmos(4.1), d_m8.dvth, d_m8.dbeta_rel),
        );
        // Tail source M5 (same geometry as M8 → ~20 µA).
        ckt.mosfet(
            tail,
            bias,
            Circuit::GROUND,
            perturb(nmos(4.1), d_m5.dvth, d_m5.dbeta_rel),
        );
        // Differential pair M1 (inp → d1), M2 (inn → out1).
        ckt.mosfet(d1, inp, tail, perturb(nmos(6.7), d_m1.dvth, d_m1.dbeta_rel));
        ckt.mosfet(
            out1,
            inn,
            tail,
            perturb(nmos(6.7), d_m2.dvth, d_m2.dbeta_rel),
        );
        // PMOS mirror M3 (diode) / M4.
        ckt.mosfet(d1, d1, vdd, perturb(pmos(7.4), d_m3.dvth, d_m3.dbeta_rel));
        ckt.mosfet(out1, d1, vdd, perturb(pmos(7.4), d_m4.dvth, d_m4.dbeta_rel));
        // Second stage: M6 PMOS CS, M7 NMOS sink (2× bias mirror).
        ckt.mosfet(
            out,
            out1,
            vdd,
            perturb(pmos(29.6), d_m6.dvth, d_m6.dbeta_rel),
        );
        ckt.mosfet(
            out,
            bias,
            Circuit::GROUND,
            perturb(nmos(8.2), d_m7.dvth, d_m7.dbeta_rel),
        );

        // Compensation + load.
        let c_shift = |seed: u64, base_off: usize, count: usize| -> f64 {
            0.03 * dy[G_CAP]
                + ParasiticSensitivity {
                    base: PARA_BASE + base_off,
                    count,
                    sigma_rel: 0.02,
                    seed,
                }
                .relative_shift(dy)
        };
        ckt.capacitor(out1, out, C_MILLER * (1.0 + c_shift(101, 40, 80)).max(0.2));
        ckt.capacitor(
            out,
            Circuit::GROUND,
            C_LOAD * (1.0 + c_shift(102, 120, 80)).max(0.2),
        );
        // Parasitic node caps: each driven by a distinct 90-factor
        // window of the 600-variable parasitic block.
        let para_nodes = [tail, d1, out1, bias];
        for (i, &node) in para_nodes.iter().enumerate() {
            let shift = c_shift(103 + i as u64, 200 + i * 90, 90);
            ckt.capacitor(node, Circuit::GROUND, C_PAR * (1.0 + shift).max(0.1));
        }

        // DC feedback network (closed at DC, open at AC).
        ckt.resistor(out, inn, R_FB);
        ckt.capacitor(inn, Circuit::GROUND, C_FB);

        // Seed Newton near the amplifying solution: the DC feedback
        // loop also admits a railed state (out = 0, M6 off) that a
        // cold start can fall into.
        let nodeset = [
            (vdd, VDD),
            (inp, VCM),
            (inn, VCM),
            (out, VCM),
            (out1, 0.65),
            (bias, 0.45),
            (tail, 0.15),
            (d1, 0.65),
        ];
        let op = DcAnalysis::default().solve_with_nodeset(&ckt, &nodeset)?;
        let sweep = AcAnalysis::default().sweep(&ckt, &op, &self.freqs)?;
        let gain = measure::to_db(measure::dc_gain(&sweep, out)?);
        let bandwidth = measure::bandwidth_3db(&sweep, out)?;
        let power = VDD * op.vsource_current(vdd_src).abs();
        let offset_raw = op.voltage(out);
        Ok((
            OpAmpPerf {
                gain,
                bandwidth,
                power,
                offset: 0.0, // filled by the caller relative to nominal
            },
            RawDc { offset_raw },
        ))
    }
}

impl Default for OpAmp {
    fn default() -> Self {
        Self::new()
    }
}

/// Raw DC quantities threaded back to the caller.
#[derive(Debug, Clone, Copy)]
struct RawDc {
    offset_raw: f64,
}

impl PerformanceCircuit for OpAmp {
    fn num_vars(&self) -> usize {
        OPAMP_NUM_VARS
    }

    fn metric_names(&self) -> &'static [&'static str] {
        &OPAMP_METRICS
    }

    fn evaluate(&self, dy: &[f64]) -> Vec<f64> {
        let p = self
            .try_evaluate(dy)
            // rsm-lint: allow(R3) — infallible `evaluate` contract: a non-converging sample is a testbench bug; `try_evaluate` is the fallible path
            .expect("OpAmp sample failed to converge");
        vec![p.gain, p.bandwidth, p.power, p.offset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_stats::NormalSampler;

    #[test]
    fn nominal_bias_is_healthy() {
        let amp = OpAmp::new();
        let dy = vec![0.0; OPAMP_NUM_VARS];
        let p = amp.try_evaluate(&dy).unwrap();
        assert!(p.gain > 40.0 && p.gain < 120.0, "gain {} dB", p.gain);
        assert!(p.bandwidth > 1e3 && p.bandwidth < 1e8, "bw {}", p.bandwidth);
        assert!(p.power > 1e-5 && p.power < 1e-3, "power {}", p.power);
        assert!(p.offset.abs() < 1e-12, "nominal offset {}", p.offset);
    }

    #[test]
    fn mismatch_creates_offset() {
        let amp = OpAmp::new();
        let mut dy = vec![0.0; OPAMP_NUM_VARS];
        // +1σ on M1's ΔV_th local factor.
        dy[LOCAL_BASE] = 1.0;
        let p = amp.try_evaluate(&dy).unwrap();
        // Input pair mismatch of ~12 mV must appear as mV-scale offset.
        assert!(
            p.offset.abs() > 1e-3 && p.offset.abs() < 0.1,
            "offset {}",
            p.offset
        );
    }

    #[test]
    fn global_vth_shifts_power() {
        let amp = OpAmp::new();
        let mut hi = vec![0.0; OPAMP_NUM_VARS];
        hi[G_VTH_N] = 2.0; // all NMOS Vth up → less bias current
        let mut lo = vec![0.0; OPAMP_NUM_VARS];
        lo[G_VTH_N] = -2.0;
        let p_hi = amp.try_evaluate(&hi).unwrap();
        let p_lo = amp.try_evaluate(&lo).unwrap();
        assert!(
            p_lo.power > p_hi.power,
            "power lo {} vs hi {}",
            p_lo.power,
            p_hi.power
        );
    }

    #[test]
    fn random_samples_converge_and_vary() {
        let amp = OpAmp::new();
        let mut s = NormalSampler::seed_from_u64(17);
        let mut gains = Vec::new();
        for _ in 0..12 {
            let dy = s.sample_vec(OPAMP_NUM_VARS);
            let p = amp.try_evaluate(&dy).expect("sample convergence");
            assert!(p.gain > 20.0 && p.gain.is_finite());
            assert!(p.bandwidth.is_finite() && p.bandwidth > 0.0);
            gains.push(p.gain);
        }
        let spread = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - gains.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "gain shows no variation: {gains:?}");
    }

    #[test]
    fn parasitic_variables_move_bandwidth_weakly() {
        let amp = OpAmp::new();
        let dy0 = vec![0.0; OPAMP_NUM_VARS];
        let p0 = amp.try_evaluate(&dy0).unwrap();
        let mut dy = dy0.clone();
        for i in 0..NUM_PARA {
            dy[PARA_BASE + i] = 1.0;
        }
        let p1 = amp.try_evaluate(&dy).unwrap();
        let rel = (p1.bandwidth - p0.bandwidth).abs() / p0.bandwidth;
        assert!(rel > 1e-4, "parasitics have no effect ({rel})");
        assert!(rel < 0.5, "parasitics dominate ({rel})");
    }

    #[test]
    #[should_panic(expected = "630")]
    fn wrong_dimension_panics() {
        let amp = OpAmp::new();
        let _ = amp.try_evaluate(&[0.0; 10]);
    }

    #[test]
    fn trait_interface() {
        let amp = OpAmp::new();
        assert_eq!(amp.num_vars(), 630);
        assert_eq!(amp.num_metrics(), 4);
        assert_eq!(amp.metric_names()[3], "offset");
    }
}
