//! Narrow-band cascode low-noise amplifier — the "RF" in the paper's
//! "Analog/RF" scope.
//!
//! Topology: inductively degenerated common-source NMOS (M1, source
//! inductor `Ls`, gate inductor `Lg`) with a cascode device (M2) and an
//! LC tank load (`Ld ∥ C_d ∥ R_p`) tuned near 2.4 GHz. Simulated at
//! transistor level (DC bias + AC sweep around the tank resonance).
//!
//! Metrics: peak voltage gain (dB), center frequency (Hz), −3 dB
//! bandwidth of the tank (Hz) and static power (W). The gain and f₀
//! depend strongly on the tank passives and M1 — a sparse structure in
//! the 220-variable space (6 globals + 18 device locals + 196 layout
//! parasitics).

use crate::variation::{DeviceSigmas, DeviceVariation, ParasiticSensitivity};
use crate::PerformanceCircuit;
use rsm_spice::ac::{log_sweep, AcAnalysis};
use rsm_spice::dc::DcAnalysis;
use rsm_spice::measure;
use rsm_spice::mosfet::{MosParams, MosType};
use rsm_spice::netlist::Circuit;

/// Global factor indices.
const G_VTH: usize = 0;
const G_BETA: usize = 1;
const G_IND: usize = 2; // inductor process tolerance
const G_CAP: usize = 3;
const G_RES: usize = 4;
const G_TEMP: usize = 5;
const NUM_GLOBALS: usize = 6;
/// Local-factor slots: M1, M2 (ΔV_th, Δβ each) + Ls, Lg, Ld, C_d, R_p
/// (one tolerance factor each) + 7 reserved dummy-device slots.
const NUM_LOCAL_SLOTS: usize = 18;
const LOCAL_BASE: usize = NUM_GLOBALS;
const PARA_BASE: usize = LOCAL_BASE + NUM_LOCAL_SLOTS;
const NUM_PARA: usize = 196;
/// Total variation dimension.
pub const LNA_NUM_VARS: usize = NUM_GLOBALS + NUM_LOCAL_SLOTS + NUM_PARA;

/// Metric names, in output order.
pub const LNA_METRICS: [&str; 4] = ["gain_db", "f_center", "rf_bandwidth", "power"];

const VDD: f64 = 1.2;
const V_GBIAS: f64 = 0.55;
const V_CASC: f64 = 0.95;
const L_S: f64 = 0.4e-9;
const L_G: f64 = 2.0e-9;
const L_D: f64 = 3.0e-9;
const C_D: f64 = 1.3e-12;
const R_P: f64 = 2_000.0;
const C_OUT: f64 = 50e-15;

/// The cascode LNA benchmark.
///
/// # Example
///
/// ```
/// use rsm_circuits::{Lna, PerformanceCircuit};
/// let lna = Lna::new();
/// assert_eq!(lna.num_vars(), 220);
/// let perf = lna.evaluate(&vec![0.0; 220]);
/// assert!(perf[0] > 6.0);            // > 6 dB gain
/// assert!(perf[1] > 1e9 && perf[1] < 5e9); // tuned in the GHz range
/// ```
#[derive(Debug, Clone)]
pub struct Lna {
    freqs: Vec<f64>,
}

impl Lna {
    /// Builds the benchmark with its default RF sweep grid.
    pub fn new() -> Self {
        // Coarse grid to locate the resonance; a fine linear sweep
        // around the peak is generated per sample.
        Lna {
            freqs: log_sweep(0.4e9, 12e9, 40),
        }
    }

    fn device_variation(&self, idx: usize) -> DeviceVariation {
        DeviceVariation {
            global_vth: G_VTH,
            global_beta: G_BETA,
            local_base: LOCAL_BASE + 2 * idx,
            sigmas: DeviceSigmas::analog_65nm(),
        }
    }

    /// Passive tolerance: global process factor + dedicated local
    /// factor + a parasitic window.
    fn passive_shift(
        &self,
        dy: &[f64],
        global: usize,
        local_slot: usize,
        para_off: usize,
        seed: u64,
    ) -> f64 {
        0.03 * dy[global]
            + 0.02 * dy[LOCAL_BASE + local_slot]
            + ParasiticSensitivity {
                base: PARA_BASE + para_off,
                count: 39,
                sigma_rel: 0.01,
                seed,
            }
            .relative_shift(dy)
    }

    /// Evaluates all four metrics; `None` on (unobserved) convergence
    /// failure.
    pub fn try_evaluate(&self, dy: &[f64]) -> Option<[f64; 4]> {
        assert_eq!(dy.len(), LNA_NUM_VARS, "LNA expects 220 variables");
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let rf_in = ckt.node("rf_in");
        let gate = ckt.node("gate");
        let src = ckt.node("src");
        let casc = ckt.node("casc");
        let mid = ckt.node("mid");
        let out = ckt.node("out");

        let vdd_src = ckt.vsource(vdd, Circuit::GROUND, VDD);
        ckt.vsource_ac(rf_in, Circuit::GROUND, V_GBIAS, 1.0);
        ckt.vsource(casc, Circuit::GROUND, V_CASC);

        let d1 = self.device_variation(0).apply(dy);
        let d2 = self.device_variation(1).apply(dy);
        let m1 = MosParams {
            mos_type: MosType::Nmos,
            vth0: 0.35 + d1.dvth,
            kp: 300e-6 * (1.0 + d1.dbeta_rel).max(0.05),
            lambda: 0.12,
            w: 80.0 * 65e-9,
            l: 65e-9,
        };
        let m2 = MosParams {
            mos_type: MosType::Nmos,
            vth0: 0.35 + d2.dvth,
            kp: 300e-6 * (1.0 + d2.dbeta_rel).max(0.05),
            lambda: 0.12,
            w: 80.0 * 65e-9,
            l: 65e-9,
        };
        // Degenerated common-source + cascode.
        ckt.mosfet(mid, gate, src, m1);
        ckt.mosfet(out, casc, mid, m2);
        ckt.inductor(
            src,
            Circuit::GROUND,
            L_S * (1.0 + self.passive_shift(dy, G_IND, 4, 0, 300)).max(0.2),
        );
        ckt.inductor(
            rf_in,
            gate,
            L_G * (1.0 + self.passive_shift(dy, G_IND, 5, 39, 301)).max(0.2),
        );
        ckt.inductor(
            vdd,
            out,
            L_D * (1.0 + self.passive_shift(dy, G_IND, 6, 78, 302)).max(0.2),
        );
        ckt.capacitor(
            out,
            Circuit::GROUND,
            C_D * (1.0 + self.passive_shift(dy, G_CAP, 7, 117, 303)).max(0.2),
        );
        ckt.resistor(
            vdd,
            out,
            R_P * (1.0 + self.passive_shift(dy, G_RES, 8, 156, 304)).max(0.3),
        );
        ckt.capacitor(out, Circuit::GROUND, C_OUT);

        let nodeset = [
            (vdd, VDD),
            (gate, V_GBIAS),
            (src, 0.0),
            (casc, V_CASC),
            (mid, 0.4),
            (out, VDD),
        ];
        let op = DcAnalysis::default()
            .solve_with_nodeset(&ckt, &nodeset)
            .ok()?;
        // Two-stage sweep: coarse locate, then a fine linear grid
        // spanning ±20 % of the peak so f0 and the −3 dB skirts are
        // resolved far below the metric's process-variation sigma.
        let coarse = AcAnalysis::default().sweep(&ckt, &op, &self.freqs).ok()?;
        let mag = coarse.magnitude(out);
        let kmax = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)?;
        let f_guess = coarse.freqs()[kmax];
        let fine_freqs: Vec<f64> = (0..241)
            .map(|i| f_guess * (0.80 + 0.40 * i as f64 / 240.0))
            .collect();
        let sweep = AcAnalysis::default().sweep(&ckt, &op, &fine_freqs).ok()?;
        let (f0, peak) = measure::peak_magnitude(&sweep, out).ok()?;
        let bw = measure::bandwidth_3db_around_peak(&sweep, out).ok()?;
        let power = VDD * op.vsource_current(vdd_src).abs() * (1.0 + 0.01 * dy[G_TEMP]);
        Some([measure::to_db(peak), f0, bw, power])
    }
}

impl Default for Lna {
    fn default() -> Self {
        Self::new()
    }
}

impl PerformanceCircuit for Lna {
    fn num_vars(&self) -> usize {
        LNA_NUM_VARS
    }

    fn metric_names(&self) -> &'static [&'static str] {
        &LNA_METRICS
    }

    fn evaluate(&self, dy: &[f64]) -> Vec<f64> {
        self.try_evaluate(dy)
            // rsm-lint: allow(R3) — infallible `evaluate` contract: a non-converging sample is a testbench bug; `try_evaluate` is the fallible path
            .expect("LNA sample failed to converge")
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_stats::NormalSampler;

    #[test]
    fn nominal_lna_is_tuned() {
        let lna = Lna::new();
        let p = lna.evaluate(&vec![0.0; LNA_NUM_VARS]);
        let (gain_db, f0, bw, power) = (p[0], p[1], p[2], p[3]);
        assert!(gain_db > 6.0 && gain_db < 40.0, "gain {gain_db} dB");
        assert!(f0 > 1.5e9 && f0 < 4e9, "f0 {f0:.3e}");
        assert!(bw > 1e7 && bw < f0, "bw {bw:.3e}");
        assert!(power > 1e-5 && power < 5e-3, "power {power}");
    }

    #[test]
    fn tank_inductor_tunes_center_frequency() {
        let lna = Lna::new();
        let mut hi = vec![0.0; LNA_NUM_VARS];
        hi[G_IND] = 2.0; // +6 % inductance → lower f0
        let mut lo = vec![0.0; LNA_NUM_VARS];
        lo[G_IND] = -2.0;
        let f_hi = lna.evaluate(&hi)[1];
        let f_lo = lna.evaluate(&lo)[1];
        assert!(
            f_lo > f_hi,
            "more inductance must lower f0: {f_lo:.3e} vs {f_hi:.3e}"
        );
    }

    #[test]
    fn transistor_beta_moves_gain() {
        let lna = Lna::new();
        let mut hi = vec![0.0; LNA_NUM_VARS];
        hi[LOCAL_BASE + 1] = 2.0; // M1 local Δβ up → more gm
        let mut lo = vec![0.0; LNA_NUM_VARS];
        lo[LOCAL_BASE + 1] = -2.0;
        let g_hi = lna.evaluate(&hi)[0];
        let g_lo = lna.evaluate(&lo)[0];
        assert!(g_hi > g_lo, "gain {g_hi} vs {g_lo}");
    }

    #[test]
    fn random_samples_converge() {
        let lna = Lna::new();
        let mut rng = NormalSampler::seed_from_u64(4);
        for _ in 0..8 {
            let dy = rng.sample_vec(LNA_NUM_VARS);
            let p = lna.try_evaluate(&dy).expect("convergence");
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "220")]
    fn wrong_dimension_panics() {
        let lna = Lna::new();
        let _ = lna.try_evaluate(&[0.0; 3]);
    }
}
