//! Benchmark circuits for the paper's evaluation (Section V).
//!
//! Two circuits, matching the paper's examples and dimensionalities:
//!
//! - [`opamp`] — a two-stage Miller-compensated operational amplifier
//!   (Fig. 3 of the paper) simulated at transistor level on the
//!   [`rsm_spice`] MNA engine, exposing **630** independent variation
//!   variables and four performance metrics (gain, bandwidth, power,
//!   offset);
//! - [`sram`] — an SRAM read path (Fig. 5: cell array, replica-timed
//!   sensing, output buffering) with **21 310** independent variation
//!   variables and one metric (read delay), evaluated by a stage-based
//!   analytic delay model (see DESIGN.md for why the full-array
//!   transient is substituted);
//! - [`lna`] — a 2.4 GHz cascode low-noise amplifier (220 variables,
//!   4 RF metrics) exercising the simulator's inductors and resonance
//!   measurements — the "RF" in the paper's "Analog/RF" scope;
//! - [`ringosc`] — a 5-stage CMOS ring oscillator (128 variables,
//!   frequency metric) exercising the transient engine inside the
//!   modeling loop;
//! - [`variation`] — the hierarchical inter-die/intra-die variation
//!   mapping shared by all benchmarks;
//! - [`sampling`] — Monte-Carlo sample generation driving either
//!   circuit from independent standard-normal factors, as the paper
//!   does after PCA.

// Numerical kernels index several parallel arrays inside one loop;
// iterator-zip rewrites obscure the math, so the range-loop lint is
// disabled crate-wide.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod lna;
pub mod opamp;
pub mod ringosc;
pub mod sampling;
pub mod sram;
pub mod variation;

pub use lna::Lna;
pub use opamp::OpAmp;
pub use ringosc::RingOscillator;
pub use sram::SramReadPath;

/// A circuit whose performance metrics are deterministic functions of
/// independent (post-PCA) variation variables `ΔY ~ N(0, I)`.
///
/// This is the interface the modeling experiments consume: they never
/// see netlists, only `(ΔY, f(ΔY))` pairs — exactly the paper's setup
/// where Spectre is a black box.
pub trait PerformanceCircuit {
    /// Number of independent variation variables `N`.
    fn num_vars(&self) -> usize;

    /// Names of the performance metrics this circuit produces.
    fn metric_names(&self) -> &'static [&'static str];

    /// Evaluates all metrics at one variation sample.
    ///
    /// # Panics
    ///
    /// Implementations panic if `dy.len() != self.num_vars()`.
    fn evaluate(&self, dy: &[f64]) -> Vec<f64>;

    /// Number of metrics (defaults to `metric_names().len()`).
    fn num_metrics(&self) -> usize {
        self.metric_names().len()
    }
}
