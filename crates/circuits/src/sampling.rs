//! Monte-Carlo sample generation.
//!
//! The paper generates two independent random sampling sets (training
//! and testing) by drawing from the joint PDF of the post-PCA
//! variables — i.i.d. standard normals — and running the circuit
//! simulator at each point. These helpers do exactly that against any
//! [`PerformanceCircuit`].

use crate::PerformanceCircuit;
use rsm_linalg::Matrix;
use rsm_stats::NormalSampler;

/// A sampled data set: inputs `ΔY` (K × N) and metric outputs
/// (K × num_metrics).
#[derive(Debug, Clone)]
pub struct SampleSet {
    /// Variation samples, one row per sample.
    pub inputs: Matrix,
    /// Metric values, one row per sample (columns follow
    /// [`PerformanceCircuit::metric_names`]).
    pub outputs: Matrix,
}

impl SampleSet {
    /// Number of samples `K`.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.rows() == 0
    }

    /// The response vector for one metric (a column of `outputs`).
    pub fn metric(&self, m: usize) -> Vec<f64> {
        self.outputs.col(m)
    }

    /// Restricts the set to the first `k` samples (cheap way to sweep
    /// training-set size over a single generated pool, as Fig. 4 does).
    ///
    /// # Panics
    ///
    /// Panics if `k > len()`.
    pub fn truncated(&self, k: usize) -> SampleSet {
        assert!(k <= self.len(), "cannot truncate {} to {k}", self.len());
        let idx: Vec<usize> = (0..k).collect();
        SampleSet {
            inputs: self.inputs.select_rows(&idx),
            outputs: self.outputs.select_rows(&idx),
        }
    }
}

/// Draws `k` samples of `circuit` with a seeded RNG.
///
/// Deterministic: the same `(circuit, k, seed)` always produces the
/// same set, so experiments are exactly reproducible.
pub fn sample<C: PerformanceCircuit + ?Sized>(circuit: &C, k: usize, seed: u64) -> SampleSet {
    let n = circuit.num_vars();
    let nm = circuit.num_metrics();
    let mut rng = NormalSampler::seed_from_u64(seed);
    let mut inputs = Matrix::zeros(k, n);
    let mut outputs = Matrix::zeros(k, nm);
    let mut dy = vec![0.0; n];
    for r in 0..k {
        rng.fill(&mut dy);
        inputs.row_mut(r).copy_from_slice(&dy);
        let m = circuit.evaluate(&dy);
        debug_assert_eq!(m.len(), nm);
        outputs.row_mut(r).copy_from_slice(&m);
    }
    SampleSet { inputs, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial analytic circuit for the sampling tests.
    struct Toy;
    impl PerformanceCircuit for Toy {
        fn num_vars(&self) -> usize {
            3
        }
        fn metric_names(&self) -> &'static [&'static str] {
            &["sum", "prod"]
        }
        fn evaluate(&self, dy: &[f64]) -> Vec<f64> {
            vec![dy.iter().sum(), dy[0] * dy[1] + 2.0]
        }
    }

    #[test]
    fn shapes_and_determinism() {
        let a = sample(&Toy, 50, 7);
        let b = sample(&Toy, 50, 7);
        assert_eq!(a.inputs.shape(), (50, 3));
        assert_eq!(a.outputs.shape(), (50, 2));
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.outputs, b.outputs);
        let c = sample(&Toy, 50, 8);
        assert_ne!(a.inputs, c.inputs);
    }

    #[test]
    fn outputs_match_circuit() {
        let s = sample(&Toy, 10, 1);
        for r in 0..10 {
            let dy = s.inputs.row(r);
            assert!((s.outputs[(r, 0)] - dy.iter().sum::<f64>()).abs() < 1e-15);
            assert!((s.outputs[(r, 1)] - (dy[0] * dy[1] + 2.0)).abs() < 1e-15);
        }
    }

    #[test]
    fn metric_extracts_column() {
        let s = sample(&Toy, 5, 2);
        let prod = s.metric(1);
        for r in 0..5 {
            assert_eq!(prod[r], s.outputs[(r, 1)]);
        }
    }

    #[test]
    fn truncation_preserves_prefix() {
        let s = sample(&Toy, 20, 3);
        let t = s.truncated(8);
        assert_eq!(t.len(), 8);
        for r in 0..8 {
            assert_eq!(t.inputs.row(r), s.inputs.row(r));
        }
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn over_truncation_panics() {
        let s = sample(&Toy, 4, 1);
        let _ = s.truncated(5);
    }
}
