//! SRAM read path (Fig. 5 of the paper): word-line driver chain, cell
//! array, replica-timed sense amplifier, output buffer.
//!
//! The modeled metric is the read delay from the word line (WL) to the
//! sense-amplifier output (Out). At paper scale the variation space has
//! **21 310** independent variables; as the paper observes, the delay
//! depends strongly on only a few dozen of them — the devices on the
//! read path — while the thousands of off-path cell variables enter
//! only through bit-line loading and leakage (near-zero coefficients)
//! or not at all (exactly-zero coefficients). That is the sparse
//! structure Fig. 6 exhibits.
//!
//! The evaluation uses a stage-based analytic delay model (square-law
//! on-currents, RC stage delays, subthreshold leakage, a smooth-max
//! for the replica timing race) rather than a 20 000-device transient —
//! see DESIGN.md for the substitution rationale. Every formula is
//! smooth in every variable, as a circuit response is.

use crate::variation::DeviceSigmas;
use crate::PerformanceCircuit;

/// Supply voltage (V).
const VDD: f64 = 1.2;
/// Nominal device threshold (V).
const VTH: f64 = 0.35;
/// Subthreshold slope parameter (V) for leakage.
const V_SS: f64 = 0.045;
/// Smooth-max temperature (s) for the replica timing race.
const TAU_RACE: f64 = 2e-12;

/// Number of named global factors.
const NUM_GLOBALS: usize = 6;
const G_VTH: usize = 0;
const G_BETA: usize = 1;
const G_CWIRE: usize = 2;
const G_TEMP: usize = 3; // mobility-like global skew
const G_LEAK: usize = 4;
const G_CCELL: usize = 5;

/// Read-path peripheral devices beyond the array: 4 WL drivers,
/// 8 sense-amp devices, 2 precharge/mux — each with {ΔV_th, Δβ}.
const NUM_DRIVERS: usize = 4;
const NUM_SA: usize = 8;
const NUM_MUX: usize = 2;
const NUM_PERIPHERALS: usize = NUM_DRIVERS + NUM_SA + NUM_MUX;

/// The SRAM read-path benchmark.
///
/// # Example
///
/// ```
/// use rsm_circuits::{SramReadPath, PerformanceCircuit};
/// let sram = SramReadPath::paper_scale();
/// assert_eq!(sram.num_vars(), 21_310); // the paper's dimensionality
/// let d = sram.evaluate(&vec![0.0; 21_310]);
/// assert!(d[0] > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SramReadPath {
    rows: usize,
    /// Data columns + 1 replica column.
    cols: usize,
    grid: usize,
    /// Sigma set for array cells.
    cell_sigmas: DeviceSigmas,
    /// Sigma set for peripheral (larger) devices.
    periph_sigmas: DeviceSigmas,
    /// Leakage prefactor calibrated so nominal column leakage is ~2 %
    /// of the cell read current.
    i_leak0: f64,
}

impl SramReadPath {
    /// The paper's configuration: 130 rows × (80 data + 1 replica)
    /// columns, an 18 × 12 spatial grid, 21 310 variables total.
    pub fn paper_scale() -> Self {
        Self::with_geometry(130, 81, 216)
    }

    /// A reduced geometry for tests and quick experiments.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`, `cols < 2` (need at least one data and
    /// the replica column) or `grid == 0`.
    pub fn with_geometry(rows: usize, cols: usize, grid: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(cols >= 2, "need a data column and the replica column");
        assert!(grid > 0, "need at least one grid factor");
        let cell_sigmas = DeviceSigmas::sram_cell_65nm();
        let mut s = SramReadPath {
            rows,
            cols,
            grid,
            cell_sigmas,
            periph_sigmas: DeviceSigmas::analog_65nm(),
            i_leak0: 0.0,
        };
        // Calibrate leakage: Σ_{r≠0} I0·exp(−VTH/V_SS) = 2 % of I_read.
        let i_read = s.on_current(1.0, 0.0, 0.0);
        let per_cell = (-VTH / V_SS).exp();
        s.i_leak0 = 0.02 * i_read / (per_cell * (rows - 1).max(1) as f64);
        s
    }

    /// Geometry accessors.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns including the replica.
    pub fn cols(&self) -> usize {
        self.cols
    }

    // ---- variable indexing -------------------------------------------------

    fn grid_base(&self) -> usize {
        NUM_GLOBALS
    }

    fn cells_base(&self) -> usize {
        NUM_GLOBALS + self.grid
    }

    fn periph_base(&self) -> usize {
        self.cells_base() + 2 * self.rows * self.cols
    }

    /// Index of the ΔV_th factor of the cell at (`row`, `col`); its Δβ
    /// factor is the next index.
    pub fn cell_var(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        self.cells_base() + 2 * (col * self.rows + row)
    }

    /// Index of peripheral device `d`'s ΔV_th factor.
    pub fn periph_var(&self, d: usize) -> usize {
        debug_assert!(d < NUM_PERIPHERALS);
        self.periph_base() + 2 * d
    }

    /// The replica column index.
    pub fn replica_col(&self) -> usize {
        self.cols - 1
    }

    /// Spatial grid factor index for a column.
    fn grid_of_col(&self, col: usize) -> usize {
        self.grid_base() + (col * self.grid) / self.cols
    }

    // ---- device models -----------------------------------------------------

    /// Square-law on-current (normalized units: β_nom = 1 → I in
    /// arbitrary consistent units; only ratios enter the delays).
    fn on_current(&self, beta_rel: f64, dvth: f64, extra_vth: f64) -> f64 {
        let vov = (VDD - VTH - dvth - extra_vth).max(0.05);
        0.5 * beta_rel.max(0.05) * vov * vov
    }

    /// Cell parameter draw: global + spatial-grid + local mismatch.
    fn cell_delta(&self, dy: &[f64], row: usize, col: usize) -> (f64, f64) {
        let s = &self.cell_sigmas;
        let g = dy[self.grid_of_col(col)];
        let base = self.cell_var(row, col);
        let dvth = s.vth_global * dy[G_VTH] + 0.4 * s.vth_global * g + s.vth_local * dy[base];
        let dbeta =
            s.beta_global * dy[G_BETA] + 0.4 * s.beta_global * g + s.beta_local * dy[base + 1];
        (dvth, dbeta)
    }

    /// Peripheral parameter draw (no grid term: peripherals sit in one
    /// corner of the macro).
    fn periph_delta(&self, dy: &[f64], d: usize) -> (f64, f64) {
        let s = &self.periph_sigmas;
        let base = self.periph_var(d);
        let dvth = s.vth_global * dy[G_VTH] + s.vth_local * dy[base];
        let dbeta = s.beta_global * dy[G_BETA] + s.beta_local * dy[base + 1];
        (dvth, dbeta)
    }

    /// Bit-line discharge time for one column: cap / (I_on − I_leak).
    ///
    /// `drive_scale` sizes the pull-down (the replica cell is doubled
    /// for timing margin).
    fn column_discharge(&self, dy: &[f64], col: usize, drive_scale: f64) -> f64 {
        // Accessed cell: row 0.
        let (dvth_a, dbeta_a) = self.cell_delta(dy, 0, col);
        let i_on =
            drive_scale * self.on_current(1.0 + dbeta_a, dvth_a, 0.0) * (1.0 + 0.02 * dy[G_TEMP]);
        // Off cells: leakage plus capacitive loading.
        let mut i_leak = 0.0;
        let mut c_bl = 1.0 + 0.05 * dy[G_CWIRE]; // wire portion (normalized)
        let per_cell_cap = 0.6 / self.rows as f64;
        for row in 1..self.rows {
            let (dvth, dbeta) = self.cell_delta(dy, row, col);
            i_leak += self.i_leak0
                * (-(VTH + dvth) / V_SS).exp()
                * (1.0 + dbeta)
                * (1.0 + 0.1 * dy[G_LEAK]);
            c_bl += per_cell_cap * (1.0 + 0.03 * dbeta + 0.01 * dy[G_CCELL]);
        }
        // Accessed cell's own drain cap.
        c_bl += per_cell_cap;
        let i_net = (i_on - i_leak).max(0.05 * i_on);
        // Unit calibration: nominal column discharge ≈ 120 ps.
        const T_UNIT: f64 = 22e-12;
        T_UNIT * c_bl * VDD / i_net
    }

    /// Inverter-chain delay (drivers d0..d3 or output buffer).
    fn chain_delay(&self, dy: &[f64], first: usize, count: usize, t_stage: f64) -> f64 {
        let mut t = 0.0;
        for d in first..first + count {
            let (dvth, dbeta) = self.periph_delta(dy, d);
            let i_rel = self.on_current(1.0 + dbeta, dvth, 0.0) / self.on_current(1.0, 0.0, 0.0);
            t += t_stage / i_rel * (1.0 + 0.02 * dy[G_TEMP]);
        }
        t
    }

    /// Sense-amp resolution delay: regenerative time constant plus a
    /// fixed wire component; depends on the SA input pair and enable
    /// devices.
    fn sense_delay(&self, dy: &[f64]) -> f64 {
        let mut t = 0.0;
        for d in NUM_DRIVERS..NUM_DRIVERS + NUM_SA {
            let (dvth, dbeta) = self.periph_delta(dy, d);
            // gm-like dependence: τ ∝ 1/√(β·I) ~ 1/(β·(Vov)).
            let vov = (VDD / 2.0 - VTH - dvth).max(0.05);
            let gm_rel = (1.0 + dbeta).max(0.05) * vov / (VDD / 2.0 - VTH);
            t += 8e-12 / gm_rel;
        }
        t
    }

    /// Column-mux / precharge contribution.
    fn mux_delay(&self, dy: &[f64]) -> f64 {
        let mut t = 0.0;
        for d in NUM_DRIVERS + NUM_SA..NUM_PERIPHERALS {
            let (dvth, dbeta) = self.periph_delta(dy, d);
            let i_rel = self.on_current(1.0 + dbeta, dvth, 0.0) / self.on_current(1.0, 0.0, 0.0);
            t += 6e-12 / i_rel;
        }
        t
    }

    /// Full read delay (seconds).
    pub fn read_delay(&self, dy: &[f64]) -> f64 {
        assert_eq!(
            dy.len(),
            self.num_vars(),
            "SRAM expects {} variables",
            self.num_vars()
        );
        // WL driver chain (4 stages, tapered).
        let t_wl = self.chain_delay(dy, 0, NUM_DRIVERS, 18e-12);
        // Data path: accessed column 0.
        let t_bl = self.column_discharge(dy, 0, 1.0);
        // Replica path: doubled replica cell, fires the sense enable.
        let t_rep = 1.2 * self.column_discharge(dy, self.replica_col(), 2.0);
        // The sense amp fires when BOTH the data is on the bit line and
        // the replica-timed enable arrives: a smooth max models the race.
        let a = t_wl + t_bl;
        let b = t_wl + t_rep;
        let m = a.max(b);
        let race = m + TAU_RACE * (((a - m) / TAU_RACE).exp() + ((b - m) / TAU_RACE).exp()).ln();
        race + self.sense_delay(dy) + self.mux_delay(dy) + self.buffer_tail(dy)
    }

    /// Output-buffer tail: two small stages in the same well as the
    /// first WL driver; their variation reuses that device's factors
    /// with a small weight.
    fn buffer_tail(&self, dy: &[f64]) -> f64 {
        let (dvth, _) = self.periph_delta(dy, 0);
        12e-12 * (1.0 + 0.2 * dvth / VTH)
    }
}

impl PerformanceCircuit for SramReadPath {
    fn num_vars(&self) -> usize {
        NUM_GLOBALS + self.grid + 2 * self.rows * self.cols + 2 * NUM_PERIPHERALS
    }

    fn metric_names(&self) -> &'static [&'static str] {
        &["read_delay"]
    }

    fn evaluate(&self, dy: &[f64]) -> Vec<f64> {
        vec![self.read_delay(dy)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_stats::{describe, NormalSampler};

    #[test]
    fn paper_scale_has_21310_variables() {
        let s = SramReadPath::paper_scale();
        assert_eq!(s.num_vars(), 21_310);
    }

    #[test]
    fn nominal_delay_in_plausible_range() {
        let s = SramReadPath::paper_scale();
        let d = s.read_delay(&vec![0.0; s.num_vars()]);
        assert!(d > 50e-12 && d < 2e-9, "delay {d}");
    }

    #[test]
    fn on_path_cell_matters_strongly_off_column_not_at_all() {
        let s = SramReadPath::with_geometry(16, 4, 4);
        let n = s.num_vars();
        let base = s.read_delay(&vec![0.0; n]);
        // Accessed cell (row 0, col 0) Vth up → slower.
        let mut dy = vec![0.0; n];
        dy[s.cell_var(0, 0)] = 2.0;
        let slow = s.read_delay(&dy);
        assert!((slow - base) / base > 0.02, "accessed cell too weak");
        // A cell in a non-accessed, non-replica column: exactly zero.
        let mut dy2 = vec![0.0; n];
        dy2[s.cell_var(3, 1)] = 3.0;
        let same = s.read_delay(&dy2);
        assert_eq!(same, base, "off-column cell must not affect delay");
    }

    #[test]
    fn off_path_cell_in_accessed_column_matters_weakly() {
        let s = SramReadPath::with_geometry(32, 4, 4);
        let n = s.num_vars();
        let base = s.read_delay(&vec![0.0; n]);
        let mut dy = vec![0.0; n];
        dy[s.cell_var(7, 0)] = 2.0; // off cell, accessed column
        let d = s.read_delay(&dy);
        let rel = (d - base).abs() / base;
        assert!(rel > 0.0, "leakage/cap path missing");
        assert!(rel < 0.01, "off cell too strong: {rel}");
    }

    #[test]
    fn replica_column_affects_timing() {
        let s = SramReadPath::with_geometry(16, 4, 4);
        let n = s.num_vars();
        let base = s.read_delay(&vec![0.0; n]);
        let mut dy = vec![0.0; n];
        dy[s.cell_var(0, s.replica_col())] = 2.0; // replica cell slower
        let d = s.read_delay(&dy);
        assert!(d > base, "replica slowdown must delay sense enable");
    }

    #[test]
    fn driver_and_sense_amp_matter() {
        let s = SramReadPath::with_geometry(16, 4, 4);
        let n = s.num_vars();
        let base = s.read_delay(&vec![0.0; n]);
        for d in 0..NUM_PERIPHERALS {
            let mut dy = vec![0.0; n];
            dy[s.periph_var(d)] = 2.0;
            let t = s.read_delay(&dy);
            assert!(
                (t - base).abs() / base > 1e-4,
                "peripheral {d} has no effect"
            );
        }
    }

    #[test]
    fn global_vth_slows_everything() {
        let s = SramReadPath::with_geometry(16, 4, 4);
        let n = s.num_vars();
        let mut hi = vec![0.0; n];
        hi[G_VTH] = 2.0;
        let mut lo = vec![0.0; n];
        lo[G_VTH] = -2.0;
        assert!(s.read_delay(&hi) > s.read_delay(&lo));
    }

    #[test]
    fn delay_distribution_is_reasonable() {
        let s = SramReadPath::with_geometry(32, 8, 8);
        let n = s.num_vars();
        let mut rng = NormalSampler::seed_from_u64(5);
        let delays: Vec<f64> = (0..2000)
            .map(|_| s.read_delay(&rng.sample_vec(n)))
            .collect();
        let mean = describe::mean(&delays);
        let cv = describe::std_dev(&delays) / mean;
        assert!(delays.iter().all(|&d| d.is_finite() && d > 0.0));
        // Variability should be a few percent — large enough to model,
        // small enough to stay near-linear.
        assert!(cv > 0.01 && cv < 0.25, "cv = {cv}");
    }

    #[test]
    fn variable_count_formula() {
        let s = SramReadPath::with_geometry(8, 4, 4);
        assert_eq!(s.num_vars(), 6 + 4 + 2 * 8 * 4 + 2 * NUM_PERIPHERALS);
        // Index layout is contiguous and in range.
        assert!(s.cell_var(7, 3) < s.periph_var(0));
        assert_eq!(s.periph_var(NUM_PERIPHERALS - 1) + 2, s.num_vars());
    }

    #[test]
    #[should_panic(expected = "variables")]
    fn wrong_dimension_panics() {
        let s = SramReadPath::with_geometry(8, 4, 4);
        let _ = s.read_delay(&[0.0; 3]);
    }
}
