//! Hierarchical process-variation mapping.
//!
//! The paper extracts its independent variables by PCA over foundry
//! data. We build the statistically equivalent structure directly in
//! independent-factor form: each physical device parameter is a linear
//! combination of
//!
//! - a few **global (inter-die)** factors shared by every device,
//! - optional **spatial grid** factors shared by nearby devices, and
//! - one dedicated **local mismatch** factor (Pelgrom-style).
//!
//! All factors are independent standard normals, so the concatenated
//! factor vector *is* the paper's `ΔY` (see `rsm_stats::factor` for
//! the equivalence with PCA whitening of the implied covariance).

/// Sensitivities of one device's threshold voltage and
/// transconductance factor to the variation hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSigmas {
    /// Local (mismatch) ΔV_th sigma in volts.
    pub vth_local: f64,
    /// Global (inter-die) ΔV_th sigma in volts.
    pub vth_global: f64,
    /// Local relative Δβ/β sigma.
    pub beta_local: f64,
    /// Global relative Δβ/β sigma.
    pub beta_global: f64,
}

impl DeviceSigmas {
    /// Representative 65 nm-class analog device sigmas.
    pub fn analog_65nm() -> Self {
        DeviceSigmas {
            vth_local: 0.010,
            vth_global: 0.012,
            beta_local: 0.015,
            beta_global: 0.025,
        }
    }

    /// Representative 65 nm-class minimum-size SRAM cell device sigmas
    /// (mismatch dominates at minimum area).
    pub fn sram_cell_65nm() -> Self {
        DeviceSigmas {
            vth_local: 0.028,
            vth_global: 0.015,
            beta_local: 0.035,
            beta_global: 0.03,
        }
    }
}

/// The per-device draw produced by [`DeviceVariation::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDelta {
    /// Threshold shift ΔV_th (V), to be *added* to `vth0`.
    pub dvth: f64,
    /// Relative transconductance shift Δβ/β, to *scale* `kp` by
    /// `1 + dbeta_rel`.
    pub dbeta_rel: f64,
}

/// Maps a device's slice of the independent factor vector to physical
/// parameter shifts.
///
/// Factor layout convention used by both benchmark circuits:
/// `dy[g_vth]`/`dy[g_beta]` are the global V_th / β factors, and each
/// device owns two consecutive local factors starting at `local_base`.
#[derive(Debug, Clone, Copy)]
pub struct DeviceVariation {
    /// Index of the shared global ΔV_th factor.
    pub global_vth: usize,
    /// Index of the shared global Δβ factor.
    pub global_beta: usize,
    /// Index of this device's first local factor (ΔV_th); the Δβ local
    /// factor is `local_base + 1`.
    pub local_base: usize,
    /// Sigma set.
    pub sigmas: DeviceSigmas,
}

impl DeviceVariation {
    /// Evaluates the parameter shifts at a factor sample.
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-range factor indices.
    pub fn apply(&self, dy: &[f64]) -> DeviceDelta {
        debug_assert!(self.local_base + 1 < dy.len());
        debug_assert!(self.global_vth < dy.len() && self.global_beta < dy.len());
        let s = &self.sigmas;
        DeviceDelta {
            dvth: s.vth_global * dy[self.global_vth] + s.vth_local * dy[self.local_base],
            dbeta_rel: s.beta_global * dy[self.global_beta]
                + s.beta_local * dy[self.local_base + 1],
        }
    }
}

/// A weak many-variable dependence: a nominal value modulated by a
/// window of fine-grained factors, `v = nominal·(1 + σ·Σ w_i·dy_i)`
/// with fixed pseudo-random weights `w_i` of unit RMS.
///
/// This models layout-parasitic variation: hundreds of variables that
/// each matter a little — the "long tail" whose model coefficients the
/// sparse solvers correctly drive to (near) zero.
#[derive(Debug, Clone)]
pub struct ParasiticSensitivity {
    /// First factor index of the window.
    pub base: usize,
    /// Number of factors in the window.
    pub count: usize,
    /// Overall relative sigma of the combined perturbation.
    pub sigma_rel: f64,
    /// Seed for the fixed weight pattern.
    pub seed: u64,
}

impl ParasiticSensitivity {
    /// Evaluates the relative perturbation `σ·Σ w_i·dy_i` (zero-mean,
    /// standard deviation ≈ `sigma_rel`).
    pub fn relative_shift(&self, dy: &[f64]) -> f64 {
        debug_assert!(self.base + self.count <= dy.len());
        if self.count == 0 {
            return 0.0;
        }
        let mut state = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
        let mut acc = 0.0;
        for i in 0..self.count {
            state = state.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            // Fixed weight in [-1, 1].
            let w = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            acc += w * dy[self.base + i];
        }
        // Normalize to unit RMS: E[(Σ w_i z_i)²] = Σ w_i² ≈ count/3.
        let rms = (self.count as f64 / 3.0).sqrt();
        self.sigma_rel * acc / rms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_stats::{describe, NormalSampler};

    #[test]
    fn device_delta_combines_global_and_local() {
        let v = DeviceVariation {
            global_vth: 0,
            global_beta: 1,
            local_base: 2,
            sigmas: DeviceSigmas {
                vth_local: 0.01,
                vth_global: 0.02,
                beta_local: 0.03,
                beta_global: 0.05,
            },
        };
        let dy = [1.0, -1.0, 2.0, 0.5];
        let d = v.apply(&dy);
        assert!((d.dvth - (0.02 + 0.02)).abs() < 1e-15);
        assert!((d.dbeta_rel - (-0.05 + 0.015)).abs() < 1e-15);
    }

    #[test]
    fn global_factor_correlates_devices() {
        let mk = |local| DeviceVariation {
            global_vth: 0,
            global_beta: 1,
            local_base: local,
            sigmas: DeviceSigmas::analog_65nm(),
        };
        let (a, b) = (mk(2), mk(4));
        let mut s = NormalSampler::seed_from_u64(4);
        let mut da = Vec::new();
        let mut db = Vec::new();
        for _ in 0..20_000 {
            let dy = s.sample_vec(6);
            da.push(a.apply(&dy).dvth);
            db.push(b.apply(&dy).dvth);
        }
        let rho = describe::correlation(&da, &db);
        // Correlation = σ_g² / (σ_g² + σ_l²) = 0.012²/(0.012²+0.010²) ≈ 0.590.
        assert!((rho - 0.590).abs() < 0.03, "rho = {rho}");
    }

    #[test]
    fn parasitic_shift_is_zero_mean_unit_scaled() {
        let p = ParasiticSensitivity {
            base: 0,
            count: 60,
            sigma_rel: 0.01,
            seed: 7,
        };
        let mut s = NormalSampler::seed_from_u64(11);
        let shifts: Vec<f64> = (0..30_000)
            .map(|_| p.relative_shift(&s.sample_vec(60)))
            .collect();
        assert!(describe::mean(&shifts).abs() < 5e-4);
        let sd = describe::std_dev(&shifts);
        assert!((sd - 0.01).abs() < 0.002, "sd = {sd}");
    }

    #[test]
    fn parasitic_weights_are_deterministic() {
        let p = ParasiticSensitivity {
            base: 0,
            count: 10,
            sigma_rel: 0.05,
            seed: 3,
        };
        let dy: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).sin()).collect();
        assert_eq!(p.relative_shift(&dy), p.relative_shift(&dy));
        let p2 = ParasiticSensitivity {
            seed: 4,
            ..p.clone()
        };
        assert_ne!(p.relative_shift(&dy), p2.relative_shift(&dy));
    }

    #[test]
    fn empty_window_is_zero() {
        let p = ParasiticSensitivity {
            base: 0,
            count: 0,
            sigma_rel: 0.05,
            seed: 1,
        };
        assert_eq!(p.relative_shift(&[]), 0.0);
    }
}
