//! CMOS ring oscillator — a transient-analysis benchmark.
//!
//! The OpAmp and LNA exercise the simulator's DC + AC paths inside the
//! modeling loop; this benchmark exercises the *transient* path: the
//! metric is the oscillation frequency of an odd-length CMOS inverter
//! ring, measured by counting mid-rail crossings of a node waveform.
//! Ring frequency is the canonical process monitor — its variability
//! aggregates every device in the ring, so unlike the SRAM (a few
//! dominant devices) the response is dense in the device factors and
//! sparse only against the parasitic tail, giving the solvers a
//! different sparsity profile to contend with.
//!
//! The DC operating point of a symmetric ring is metastable (all nodes
//! at the switching threshold); a capacitively-coupled pulse kicks one
//! node off the fixed point and regeneration does the rest.

use crate::variation::{DeviceSigmas, DeviceVariation, ParasiticSensitivity};
use crate::PerformanceCircuit;
use rsm_spice::mosfet::{MosParams, MosType};
use rsm_spice::netlist::Circuit;
use rsm_spice::tran::{TranAnalysis, Waveform};

const VDD: f64 = 1.2;
/// Ring length (odd).
const STAGES: usize = 5;
/// Per-node explicit load capacitance (F).
const C_NODE: f64 = 5e-15;
/// Kick-coupling capacitance (F).
const C_KICK: f64 = 2e-15;

const G_VTH_N: usize = 0;
const G_BETA_N: usize = 1;
const G_VTH_P: usize = 2;
const G_BETA_P: usize = 3;
const NUM_GLOBALS: usize = 4;
/// 2 devices per stage × STAGES.
const NUM_DEVICES: usize = 2 * STAGES;
const LOCAL_BASE: usize = NUM_GLOBALS;
const PARA_BASE: usize = LOCAL_BASE + 2 * NUM_DEVICES;
const NUM_PARA: usize = 104;
/// Total variation dimension.
pub const RINGOSC_NUM_VARS: usize = NUM_GLOBALS + 2 * NUM_DEVICES + NUM_PARA;

/// The ring-oscillator benchmark.
///
/// # Example
///
/// ```
/// use rsm_circuits::{RingOscillator, PerformanceCircuit};
/// let ring = RingOscillator::new();
/// assert_eq!(ring.num_vars(), 128);
/// let f = ring.evaluate(&vec![0.0; 128]);
/// assert!(f[0] > 1e8, "oscillates in the GHz range: {}", f[0]);
/// ```
#[derive(Debug, Clone)]
pub struct RingOscillator {
    dt: f64,
    t_stop: f64,
}

impl RingOscillator {
    /// Builds the benchmark with a time grid resolving ≈ 8 periods.
    pub fn new() -> Self {
        RingOscillator {
            dt: 2e-12,
            t_stop: 3e-9,
        }
    }

    fn device_variation(&self, idx: usize, pmos: bool) -> DeviceVariation {
        DeviceVariation {
            global_vth: if pmos { G_VTH_P } else { G_VTH_N },
            global_beta: if pmos { G_BETA_P } else { G_BETA_N },
            local_base: LOCAL_BASE + 2 * idx,
            sigmas: DeviceSigmas::analog_65nm(),
        }
    }

    /// Oscillation frequency (Hz); `None` if the ring failed to start
    /// (does not occur at the calibrated sigmas).
    pub fn try_frequency(&self, dy: &[f64]) -> Option<f64> {
        assert_eq!(
            dy.len(),
            RINGOSC_NUM_VARS,
            "ring oscillator expects {RINGOSC_NUM_VARS} variables"
        );
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, VDD);
        let kick_in = ckt.node("kick");
        let kick_src = ckt.vsource(kick_in, Circuit::GROUND, 0.0);
        let nodes: Vec<_> = (0..STAGES).map(|i| ckt.node(&format!("n{i}"))).collect();
        for i in 0..STAGES {
            let inp = nodes[i];
            let out = nodes[(i + 1) % STAGES];
            let dn = self.device_variation(2 * i, false).apply(dy);
            let dp = self.device_variation(2 * i + 1, true).apply(dy);
            let nmos = MosParams {
                mos_type: MosType::Nmos,
                vth0: 0.35 + dn.dvth,
                kp: 300e-6 * (1.0 + dn.dbeta_rel).max(0.05),
                lambda: 0.15,
                w: 4.0 * 65e-9,
                l: 65e-9,
            };
            let pmos = MosParams {
                mos_type: MosType::Pmos,
                vth0: 0.35 + dp.dvth,
                kp: 120e-6 * (1.0 + dp.dbeta_rel).max(0.05),
                lambda: 0.18,
                w: 10.0 * 65e-9,
                l: 65e-9,
            };
            ckt.mosfet(out, inp, Circuit::GROUND, nmos);
            ckt.mosfet(out, inp, vdd, pmos);
            // Node load with a parasitic-window dependence.
            let shift = ParasiticSensitivity {
                base: PARA_BASE + (i * NUM_PARA / STAGES),
                count: NUM_PARA / STAGES,
                sigma_rel: 0.03,
                seed: 400 + i as u64,
            }
            .relative_shift(dy);
            ckt.capacitor(out, Circuit::GROUND, C_NODE * (1.0 + shift).max(0.2));
        }
        // Symmetry-breaking kick into node 0.
        ckt.capacitor(kick_in, nodes[0], C_KICK);

        let tran = TranAnalysis::new(self.dt, self.t_stop);
        let res = tran
            .run(
                &ckt,
                &[(
                    kick_src,
                    Waveform::Step {
                        v0: 0.0,
                        v1: VDD,
                        t0: 10e-12,
                        t_rise: 10e-12,
                    },
                )],
            )
            .ok()?;
        // Count rising mid-rail crossings in the settled second half.
        let wave = res.voltage(nodes[2]);
        let times = res.times();
        let start = times.len() / 2;
        let vm = VDD / 2.0;
        let mut rising = Vec::new();
        for k in start.max(1)..times.len() {
            if wave[k - 1] < vm && wave[k] >= vm {
                // Linear interpolation of the crossing time.
                let t = times[k - 1]
                    + (vm - wave[k - 1]) / (wave[k] - wave[k - 1]) * (times[k] - times[k - 1]);
                rising.push(t);
            }
        }
        if rising.len() < 3 {
            return None; // failed to oscillate
        }
        // Mean period from first to last crossing.
        let span = *rising.last()? - *rising.first()?;
        Some((rising.len() - 1) as f64 / span)
    }
}

impl Default for RingOscillator {
    fn default() -> Self {
        Self::new()
    }
}

impl PerformanceCircuit for RingOscillator {
    fn num_vars(&self) -> usize {
        RINGOSC_NUM_VARS
    }

    fn metric_names(&self) -> &'static [&'static str] {
        &["frequency"]
    }

    fn evaluate(&self, dy: &[f64]) -> Vec<f64> {
        vec![self
            .try_frequency(dy)
            // rsm-lint: allow(R3) — infallible `evaluate` contract: a non-starting oscillator is a testbench bug; `try_frequency` is the fallible path
            .expect("ring oscillator failed to start")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_stats::{describe, NormalSampler};

    #[test]
    fn nominal_ring_oscillates_at_plausible_frequency() {
        let ring = RingOscillator::new();
        let f = ring.try_frequency(&vec![0.0; RINGOSC_NUM_VARS]).unwrap();
        assert!(f > 5e8 && f < 5e10, "frequency {f:.3e}");
    }

    #[test]
    fn slower_devices_lower_the_frequency() {
        let ring = RingOscillator::new();
        let mut slow = vec![0.0; RINGOSC_NUM_VARS];
        slow[G_VTH_N] = 2.0;
        slow[G_VTH_P] = 2.0;
        let mut fast = vec![0.0; RINGOSC_NUM_VARS];
        fast[G_VTH_N] = -2.0;
        fast[G_VTH_P] = -2.0;
        let f_slow = ring.try_frequency(&slow).unwrap();
        let f_fast = ring.try_frequency(&fast).unwrap();
        assert!(
            f_fast > f_slow * 1.02,
            "fast {f_fast:.3e} vs slow {f_slow:.3e}"
        );
    }

    #[test]
    fn random_samples_oscillate_with_modest_spread() {
        let ring = RingOscillator::new();
        let mut rng = NormalSampler::seed_from_u64(21);
        let freqs: Vec<f64> = (0..6)
            .map(|_| {
                ring.try_frequency(&rng.sample_vec(RINGOSC_NUM_VARS))
                    .expect("oscillation")
            })
            .collect();
        let cv = describe::std_dev(&freqs) / describe::mean(&freqs);
        assert!(cv > 0.001 && cv < 0.3, "frequency CV {cv}");
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_dimension_panics() {
        let ring = RingOscillator::new();
        let _ = ring.try_frequency(&[0.0; 4]);
    }
}
