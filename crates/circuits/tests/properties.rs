//! Property-based tests of the benchmark circuits: smoothness,
//! determinism, monotone physical trends, and index-layout invariants
//! over randomized variation samples.

use proptest::prelude::*;
use rsm_circuits::{OpAmp, PerformanceCircuit, SramReadPath};
use rsm_stats::NormalSampler;

fn sram() -> SramReadPath {
    SramReadPath::with_geometry(16, 4, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sram_delay_finite_positive_everywhere(seed in 0u64..10_000) {
        let s = sram();
        let mut rng = NormalSampler::seed_from_u64(seed);
        let dy = rng.sample_vec(s.num_vars());
        let d = s.read_delay(&dy);
        prop_assert!(d.is_finite() && d > 0.0, "delay {d}");
        // Deterministic.
        prop_assert_eq!(d.to_bits(), s.read_delay(&dy).to_bits());
    }

    #[test]
    fn sram_accessed_cell_vth_monotone(seed in 0u64..10_000, bump in 0.1f64..2.0) {
        // Raising the accessed cell's threshold can only slow the read,
        // whatever the background variation.
        let s = sram();
        let mut rng = NormalSampler::seed_from_u64(seed);
        let mut dy = rng.sample_vec(s.num_vars());
        // Keep the background mild so the accessed cell stays dominant.
        for v in &mut dy {
            *v = v.clamp(-1.5, 1.5);
        }
        let base = s.read_delay(&dy);
        dy[s.cell_var(0, 0)] += bump;
        let slower = s.read_delay(&dy);
        prop_assert!(slower >= base, "{slower} < {base}");
    }

    #[test]
    fn sram_off_column_cells_are_exactly_irrelevant(
        seed in 0u64..10_000,
        row in 1usize..16,
        val in -3.0f64..3.0,
    ) {
        let s = sram();
        let mut rng = NormalSampler::seed_from_u64(seed);
        let dy = rng.sample_vec(s.num_vars());
        let base = s.read_delay(&dy);
        // Column 1 is neither accessed (0) nor replica (3).
        let mut dy2 = dy.clone();
        dy2[s.cell_var(row, 1)] = val;
        dy2[s.cell_var(row, 1) + 1] = -val;
        prop_assert_eq!(base.to_bits(), s.read_delay(&dy2).to_bits());
    }

    #[test]
    fn sram_delay_locally_smooth(seed in 0u64..10_000) {
        // Directional finite differences at two nearby scales must
        // agree — no kinks from the smooth-max or clamps at typical
        // operating points.
        let s = sram();
        let mut rng = NormalSampler::seed_from_u64(seed);
        let mut dy = rng.sample_vec(s.num_vars());
        for v in &mut dy {
            *v = v.clamp(-2.0, 2.0);
        }
        let dir_idx = s.cell_var(0, 0);
        let f = |x: f64, dy: &mut Vec<f64>| -> f64 {
            let old = dy[dir_idx];
            dy[dir_idx] = x;
            let d = s.read_delay(dy);
            dy[dir_idx] = old;
            d
        };
        let x0 = dy[dir_idx];
        let g1 = (f(x0 + 1e-4, &mut dy) - f(x0 - 1e-4, &mut dy)) / 2e-4;
        let g2 = (f(x0 + 1e-5, &mut dy) - f(x0 - 1e-5, &mut dy)) / 2e-5;
        prop_assert!(
            (g1 - g2).abs() <= 1e-3 * (1.0 + g1.abs().max(g2.abs())),
            "gradient estimates disagree: {g1} vs {g2}"
        );
    }
}

#[test]
fn opamp_is_deterministic_and_smooth_in_mismatch() {
    let amp = OpAmp::new();
    let n = amp.num_vars();
    let mut rng = NormalSampler::seed_from_u64(3);
    let dy: Vec<f64> = rng
        .sample_vec(n)
        .iter()
        .map(|v| v.clamp(-2.0, 2.0))
        .collect();
    let a = amp.evaluate(&dy);
    let b = amp.evaluate(&dy);
    assert_eq!(a, b, "OpAmp evaluation must be deterministic");
    // Small input change → small metric change (no chaotic behaviour).
    let mut dy2 = dy.clone();
    dy2[6] += 1e-4;
    let c = amp.evaluate(&dy2);
    for (i, (x, y)) in a.iter().zip(&c).enumerate() {
        let rel = (x - y).abs() / (x.abs().max(1e-12));
        assert!(rel < 0.01, "metric {i} jumped by {rel} for a 1e-4 nudge");
    }
}

#[test]
fn sram_variable_indices_form_a_partition() {
    // cell_var / periph_var must tile [NUM_GLOBALS+grid, num_vars)
    // without overlap.
    let s = SramReadPath::with_geometry(8, 3, 4);
    let mut seen = vec![false; s.num_vars()];
    for col in 0..3 {
        for row in 0..8 {
            let v = s.cell_var(row, col);
            for idx in [v, v + 1] {
                assert!(!seen[idx], "cell index {idx} reused");
                seen[idx] = true;
            }
        }
    }
    for d in 0..14 {
        let v = s.periph_var(d);
        for idx in [v, v + 1] {
            assert!(!seen[idx], "peripheral index {idx} reused");
            seen[idx] = true;
        }
    }
    // Globals + grid occupy the untouched prefix.
    let unused: Vec<usize> = seen
        .iter()
        .enumerate()
        .filter(|(_, &s)| !s)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(unused, (0..10).collect::<Vec<_>>()); // 6 globals + 4 grid
}
