//! Property-based tests of the statistics substrate.

use proptest::prelude::*;
use rsm_linalg::Matrix;
use rsm_stats::{describe, metrics, FactorModel, NormalSampler, Pca, QFold};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qfold_is_partition(n in 4usize..200, q in 2usize..8) {
        prop_assume!(q <= n);
        let folds = QFold::new(n, q).unwrap();
        let mut seen = HashSet::new();
        for (train, test) in folds.splits() {
            prop_assert_eq!(train.len() + test.len(), n);
            for i in test {
                prop_assert!(seen.insert(i), "index in two folds");
            }
        }
        prop_assert_eq!(seen.len(), n);
    }

    #[test]
    fn qfold_balanced(n in 8usize..300, q in 2usize..6) {
        prop_assume!(q <= n);
        let folds = QFold::new(n, q).unwrap();
        let sizes: Vec<usize> = (0..q).map(|f| folds.split(f).1.len()).collect();
        let mn = *sizes.iter().min().unwrap();
        let mx = *sizes.iter().max().unwrap();
        prop_assert!(mx - mn <= 1, "{sizes:?}");
    }

    #[test]
    fn relative_error_scale_invariant(
        pred in proptest::collection::vec(-5.0f64..5.0, 10),
        truth in proptest::collection::vec(-5.0f64..5.0, 10),
        scale in 0.1f64..100.0,
    ) {
        let e1 = metrics::relative_error(&pred, &truth);
        let pred_s: Vec<f64> = pred.iter().map(|v| v * scale).collect();
        let truth_s: Vec<f64> = truth.iter().map(|v| v * scale).collect();
        let e2 = metrics::relative_error(&pred_s, &truth_s);
        if e1.is_finite() {
            prop_assert!((e1 - e2).abs() < 1e-9 * (1.0 + e1));
        }
    }

    #[test]
    fn relative_error_shift_invariant_in_truth_mean(
        pred in proptest::collection::vec(-5.0f64..5.0, 10),
        truth in proptest::collection::vec(-5.0f64..5.0, 10),
        shift in -50.0f64..50.0,
    ) {
        // Shifting BOTH by a constant leaves the error unchanged
        // (numerator is a difference; denominator is mean-centered).
        let e1 = metrics::relative_error(&pred, &truth);
        let ps: Vec<f64> = pred.iter().map(|v| v + shift).collect();
        let ts: Vec<f64> = truth.iter().map(|v| v + shift).collect();
        let e2 = metrics::relative_error(&ps, &ts);
        if e1.is_finite() {
            prop_assert!((e1 - e2).abs() < 1e-7 * (1.0 + e1));
        }
    }

    #[test]
    fn r_squared_below_one(
        pred in proptest::collection::vec(-5.0f64..5.0, 12),
        truth in proptest::collection::vec(-5.0f64..5.0, 12),
    ) {
        prop_assert!(metrics::r_squared(&pred, &truth) <= 1.0 + 1e-12);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..50),
        shift in -1e3f64..1e3,
    ) {
        let v = describe::variance(&xs);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((describe::variance(&shifted) - v).abs() < 1e-6 * (1.0 + v));
    }

    #[test]
    fn quantile_monotone(
        xs in proptest::collection::vec(-10.0f64..10.0, 2..40),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(describe::quantile(&xs, lo) <= describe::quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn factor_model_covariance_psd_diagonal_dominates(
        loadings in proptest::collection::vec(-1.0f64..1.0, 12),
        vars in proptest::collection::vec(0.01f64..2.0, 4),
    ) {
        let l = Matrix::from_vec(4, 3, loadings).unwrap();
        let m = FactorModel::new(l, vars).unwrap();
        // Marginal variance bounds |covariance| (Cauchy–Schwarz).
        for i in 0..4 {
            for j in 0..4 {
                let cij = m.covariance(i, j);
                let bound = (m.marginal_variance(i) * m.marginal_variance(j)).sqrt();
                prop_assert!(cij.abs() <= bound + 1e-12);
            }
        }
    }

    #[test]
    fn factor_model_color_is_linear(
        loadings in proptest::collection::vec(-1.0f64..1.0, 6),
        vars in proptest::collection::vec(0.01f64..2.0, 3),
        dy1 in proptest::collection::vec(-2.0f64..2.0, 5),
        dy2 in proptest::collection::vec(-2.0f64..2.0, 5),
    ) {
        let l = Matrix::from_vec(3, 2, loadings).unwrap();
        let m = FactorModel::new(l, vars).unwrap();
        let sum: Vec<f64> = dy1.iter().zip(&dy2).map(|(a, b)| a + b).collect();
        let lhs = m.color(&sum);
        let x1 = m.color(&dy1);
        let x2 = m.color(&dy2);
        for i in 0..3 {
            prop_assert!((lhs[i] - x1[i] - x2[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn sampler_reproducible(seed in 0u64..1_000_000) {
        let mut a = NormalSampler::seed_from_u64(seed);
        let mut b = NormalSampler::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.sample().to_bits(), b.sample().to_bits());
        }
    }
}

#[test]
fn pca_whiten_color_roundtrip_on_factor_covariance() {
    // A FactorModel's dense covariance, whitened by PCA, must color
    // back to samples with matching covariance — ties the two
    // representations together.
    let l = Matrix::from_rows(&[&[0.5, 0.1], &[0.4, -0.2], &[0.0, 0.6]]).unwrap();
    let fm = FactorModel::new(l, vec![0.2, 0.3, 0.1]).unwrap();
    let cov = fm.dense_covariance();
    let pca = Pca::from_covariance(&cov, 0.0).unwrap();
    let mut rng = NormalSampler::seed_from_u64(5);
    let mut acc = Matrix::zeros(3, 3);
    let k = 60_000;
    for _ in 0..k {
        let x = pca.sample(&mut rng);
        for i in 0..3 {
            for j in 0..3 {
                acc[(i, j)] += x[i] * x[j];
            }
        }
    }
    acc.scale(1.0 / k as f64);
    assert!(acc.max_abs_diff(&cov).unwrap() < 0.02);
}
