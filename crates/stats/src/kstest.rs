//! Two-sample Kolmogorov–Smirnov comparison.
//!
//! The paper's motivating application is predicting performance
//! *distributions* from the fitted model instead of running more
//! simulations. The KS statistic quantifies whether the model-predicted
//! distribution actually matches the simulator's — the end-to-end
//! validation the examples and integration tests use.

/// Result of a two-sample KS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup_x |F₁(x) − F₂(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value for the null hypothesis that both samples
    /// come from the same distribution (Kolmogorov distribution with
    /// the effective sample size).
    pub p_value: f64,
}

/// Two-sample KS test.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs data");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|p, q| p.total_cmp(q));
    xb.sort_by(|p, q| p.total_cmp(q));
    let (na, nb) = (xa.len(), xb.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d = 0.0f64;
    while i < na && j < nb {
        let x = xa[i].min(xb[j]);
        while i < na && xa[i] <= x {
            i += 1;
        }
        while j < nb && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na + nb) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// The Kolmogorov survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    // Series truncation: terms below f64 round-off of the leading term
    // cannot change the sum.
    const TERM_FLOOR: f64 = 1e-16;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < TERM_FLOOR {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::NormalSampler;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&x, &x);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let mut s = NormalSampler::seed_from_u64(1);
        let a = s.sample_vec(2000);
        let b = s.sample_vec(2000);
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic < 0.05, "D = {}", r.statistic);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut s = NormalSampler::seed_from_u64(2);
        let a = s.sample_vec(2000);
        let b: Vec<f64> = s.sample_vec(2000).iter().map(|v| v + 0.5).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.15, "D = {}", r.statistic);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn scaled_distribution_rejected() {
        let mut s = NormalSampler::seed_from_u64(3);
        let a = s.sample_vec(3000);
        let b: Vec<f64> = s.sample_vec(3000).iter().map(|v| v * 2.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn known_small_case() {
        // F₁ jumps at {0,1}, F₂ at {0.5, 1.5}: D = 0.5.
        let a = [0.0, 1.0];
        let b = [0.5, 1.5];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unequal_sizes_supported() {
        let mut s = NormalSampler::seed_from_u64(4);
        let a = s.sample_vec(100);
        let b = s.sample_vec(5000);
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic < 0.2);
        assert!(r.p_value > 0.001);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_sample_panics() {
        let _ = ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn kolmogorov_q_endpoints() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        assert!(kolmogorov_q(2.0) < 1e-3);
    }
}
