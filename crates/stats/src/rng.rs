//! Standard-normal sampling.
//!
//! The paper draws its training and testing points "randomly … based on
//! the probability density function pdf(ΔY)" — i.e. i.i.d. standard
//! normals after PCA. `rand` alone (without `rand_distr`) only offers
//! uniforms, so we implement the Marsaglia polar transform here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable generator of standard-normal variates.
///
/// Uses the Marsaglia polar method with one cached variate, on top of
/// [`rand::rngs::StdRng`], so runs are exactly reproducible from a seed.
///
/// # Example
///
/// ```
/// use rsm_stats::NormalSampler;
/// let mut s = NormalSampler::seed_from_u64(42);
/// let x = s.sample();
/// let v = s.sample_vec(10);
/// assert_eq!(v.len(), 10);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct NormalSampler {
    rng: StdRng,
    cached: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with the given 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        NormalSampler {
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draws one standard-normal variate.
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        loop {
            let u: f64 = self.rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = self.rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * f);
                return u * f;
            }
        }
    }

    /// Draws `n` standard-normal variates into a fresh vector.
    pub fn sample_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Fills a slice with standard-normal variates.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.sample();
        }
    }

    /// Draws a uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index: empty range");
        self.rng.random_range(0..n)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;

    #[test]
    fn reproducible_from_seed() {
        let mut a = NormalSampler::seed_from_u64(7);
        let mut b = NormalSampler::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NormalSampler::seed_from_u64(1);
        let mut b = NormalSampler::seed_from_u64(2);
        let va = a.sample_vec(16);
        let vb = b.sample_vec(16);
        assert_ne!(va, vb);
    }

    #[test]
    fn moments_match_standard_normal() {
        let mut s = NormalSampler::seed_from_u64(2024);
        let xs = s.sample_vec(200_000);
        let m = describe::mean(&xs);
        let v = describe::variance(&xs);
        let sk = describe::skewness(&xs);
        let ku = describe::excess_kurtosis(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
        assert!(sk.abs() < 0.03, "skew {sk}");
        assert!(ku.abs() < 0.06, "kurt {ku}");
    }

    #[test]
    fn tail_fractions_reasonable() {
        let mut s = NormalSampler::seed_from_u64(5);
        let xs = s.sample_vec(100_000);
        let beyond2: f64 = xs.iter().filter(|x| x.abs() > 2.0).count() as f64 / xs.len() as f64;
        // P(|Z|>2) ≈ 0.0455
        assert!((beyond2 - 0.0455).abs() < 0.005, "{beyond2}");
    }

    #[test]
    fn uniform_index_in_range_and_shuffle_is_permutation() {
        let mut s = NormalSampler::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.uniform_index(7) < 7);
        }
        let mut v: Vec<usize> = (0..50).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn fill_fills_everything() {
        let mut s = NormalSampler::seed_from_u64(9);
        let mut buf = vec![0.0; 64];
        s.fill(&mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
