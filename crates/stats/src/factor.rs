//! Factor-form Gaussian variation models.
//!
//! The paper's SRAM example has 21 310 correlated process parameters;
//! its dense 21 310² covariance would be 3.6 GB and its Jacobi
//! eigendecomposition intractable. Real variation models, however, are
//! naturally *structured*: a handful of shared inter-die factors plus
//! independent per-device mismatch,
//!
//! `ΔX = L·z_g + D^{1/2}·z_l`,  `Σ = L·Lᵀ + D`,
//!
//! with `L ∈ R^{N×r}` (`r ≪ N`) and `D` diagonal. In this form the
//! model *is already* a linear map from `r + N` independent
//! standard-normal factors — exactly the post-PCA representation the
//! paper assumes — so whitening is available by construction and no
//! dense eigendecomposition is needed.

use crate::rng::NormalSampler;
use rsm_linalg::{LinalgError, Matrix, Result};

/// A Gaussian model `ΔX = L·z_g + D^{1/2}·z_l` over `N` parameters with
/// `r` shared factors, equivalent to `ΔX ~ N(0, L·Lᵀ + D)`.
///
/// The concatenated vector `ΔY = [z_g; z_l] ∈ R^{r+N}` of independent
/// standard normals plays the role of the paper's post-PCA variables.
///
/// # Example
///
/// ```
/// use rsm_linalg::Matrix;
/// use rsm_stats::{FactorModel, NormalSampler};
/// // Two parameters sharing one global factor plus local mismatch.
/// let l = Matrix::from_rows(&[&[0.8], &[0.8]]).unwrap();
/// let model = FactorModel::new(l, vec![0.36, 0.36]).unwrap();
/// assert_eq!(model.latent_dim(), 3); // 1 global + 2 local
/// let mut s = NormalSampler::seed_from_u64(1);
/// let dx = model.sample(&mut s);
/// assert_eq!(dx.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FactorModel {
    /// `N × r` loading matrix.
    loadings: Matrix,
    /// Per-parameter independent variances (diagonal of `D`).
    diag_var: Vec<f64>,
    /// Cached `sqrt` of `diag_var`.
    diag_sd: Vec<f64>,
}

impl FactorModel {
    /// Builds a factor model from loadings and independent variances.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::ShapeMismatch`] if `diag_var.len()` differs from
    ///   the loading row count;
    /// - [`LinalgError::InvalidArgument`] if any variance is negative or
    ///   non-finite.
    pub fn new(loadings: Matrix, diag_var: Vec<f64>) -> Result<Self> {
        if diag_var.len() != loadings.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} diagonal variances", loadings.rows()),
                found: format!("{}", diag_var.len()),
            });
        }
        if diag_var.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(LinalgError::InvalidArgument(
                "diagonal variances must be finite and non-negative".into(),
            ));
        }
        let diag_sd = diag_var.iter().map(|v| v.sqrt()).collect();
        Ok(FactorModel {
            loadings,
            diag_var,
            diag_sd,
        })
    }

    /// A purely independent model (`r = 0`) with the given variances.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    pub fn independent(diag_var: Vec<f64>) -> Result<Self> {
        let n = diag_var.len();
        Self::new(Matrix::zeros(n, 0), diag_var)
    }

    /// Number of physical parameters `N`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.loadings.rows()
    }

    /// Number of shared factors `r`.
    #[inline]
    pub fn num_factors(&self) -> usize {
        self.loadings.cols()
    }

    /// Total number of independent latent variables `r + N` — the
    /// dimension of the paper's `ΔY`.
    #[inline]
    pub fn latent_dim(&self) -> usize {
        self.num_factors() + self.dim()
    }

    /// The loading matrix `L`.
    pub fn loadings(&self) -> &Matrix {
        &self.loadings
    }

    /// Independent (mismatch) variances — the diagonal of `D`.
    pub fn diag_var(&self) -> &[f64] {
        &self.diag_var
    }

    /// Maps independent standard normals `ΔY = [z_g; z_l]` to the
    /// correlated parameter deltas `ΔX`.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != latent_dim()`.
    pub fn color(&self, dy: &[f64]) -> Vec<f64> {
        let (n, r) = (self.dim(), self.num_factors());
        assert_eq!(dy.len(), r + n, "color: latent dimension mismatch");
        let (zg, zl) = dy.split_at(r);
        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            let mut s = 0.0;
            let lrow = self.loadings.row(i);
            for (j, &z) in zg.iter().enumerate() {
                s += lrow[j] * z;
            }
            *xi = s + self.diag_sd[i] * zl[i];
        }
        x
    }

    /// Draws one correlated sample `ΔX`.
    pub fn sample(&self, sampler: &mut NormalSampler) -> Vec<f64> {
        let dy = sampler.sample_vec(self.latent_dim());
        self.color(&dy)
    }

    /// Marginal variance of parameter `i`: `Σ_ii = Σ_j L_ij² + D_ii`.
    pub fn marginal_variance(&self, i: usize) -> f64 {
        let lrow = self.loadings.row(i);
        lrow.iter().map(|l| l * l).sum::<f64>() + self.diag_var[i]
    }

    /// Covariance between parameters `i` and `j` (`i ≠ j` ⇒ only the
    /// shared-factor part contributes).
    pub fn covariance(&self, i: usize, j: usize) -> f64 {
        let li = self.loadings.row(i);
        let lj = self.loadings.row(j);
        let shared: f64 = li.iter().zip(lj).map(|(a, b)| a * b).sum();
        if i == j {
            shared + self.diag_var[i]
        } else {
            shared
        }
    }

    /// Materializes the dense covariance `Σ = L·Lᵀ + D`.
    ///
    /// Only sensible for small `N` (tests, the 630-variable OpAmp).
    pub fn dense_covariance(&self) -> Matrix {
        let n = self.dim();
        let mut cov = Matrix::from_fn(n, n, |i, j| self.covariance(i, j));
        for i in 0..n {
            cov[(i, i)] = self.marginal_variance(i);
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;

    fn toy_model() -> FactorModel {
        let l = Matrix::from_rows(&[&[0.6, 0.0], &[0.6, 0.3], &[0.0, 0.5]]).unwrap();
        FactorModel::new(l, vec![0.25, 0.04, 0.09]).unwrap()
    }

    #[test]
    fn dimensions() {
        let m = toy_model();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.num_factors(), 2);
        assert_eq!(m.latent_dim(), 5);
    }

    #[test]
    fn covariance_formulas() {
        let m = toy_model();
        assert!((m.marginal_variance(0) - (0.36 + 0.25)).abs() < 1e-15);
        assert!((m.covariance(0, 1) - 0.36).abs() < 1e-15);
        assert!((m.covariance(0, 2) - 0.0).abs() < 1e-15);
        assert!((m.covariance(1, 2) - 0.15).abs() < 1e-15);
        let dense = m.dense_covariance();
        assert!((dense[(1, 1)] - m.marginal_variance(1)).abs() < 1e-15);
        assert!((dense[(2, 1)] - dense[(1, 2)]).abs() < 1e-15);
    }

    #[test]
    fn sample_covariance_matches_model() {
        let m = toy_model();
        let mut s = NormalSampler::seed_from_u64(3);
        let k = 80_000;
        let mut acc = Matrix::zeros(3, 3);
        for _ in 0..k {
            let x = m.sample(&mut s);
            for i in 0..3 {
                for j in 0..3 {
                    acc[(i, j)] += x[i] * x[j];
                }
            }
        }
        acc.scale(1.0 / k as f64);
        assert!(acc.max_abs_diff(&m.dense_covariance()).unwrap() < 0.02);
    }

    #[test]
    fn color_is_linear_and_deterministic() {
        let m = toy_model();
        let dy = [1.0, -1.0, 0.5, 0.0, 2.0];
        let x1 = m.color(&dy);
        let x2 = m.color(&dy);
        assert_eq!(x1, x2);
        let scaled: Vec<f64> = dy.iter().map(|v| 2.0 * v).collect();
        let xs = m.color(&scaled);
        for (a, b) in xs.iter().zip(&x1) {
            assert!((a - 2.0 * b).abs() < 1e-14);
        }
    }

    #[test]
    fn independent_model_has_no_cross_covariance() {
        let m = FactorModel::independent(vec![1.0, 4.0]).unwrap();
        assert_eq!(m.num_factors(), 0);
        assert_eq!(m.covariance(0, 1), 0.0);
        assert!((m.marginal_variance(1) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let l = Matrix::zeros(3, 1);
        assert!(FactorModel::new(l.clone(), vec![1.0, 1.0]).is_err());
        assert!(FactorModel::new(l.clone(), vec![1.0, -0.1, 1.0]).is_err());
        assert!(FactorModel::new(l, vec![1.0, f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn whitened_latents_drive_marginals() {
        // Var of each ΔX_i from sampling should match marginal_variance.
        let m = toy_model();
        let mut s = NormalSampler::seed_from_u64(8);
        let k = 60_000;
        let mut cols: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(k)).collect();
        for _ in 0..k {
            let x = m.sample(&mut s);
            for (c, v) in cols.iter_mut().zip(&x) {
                c.push(*v);
            }
        }
        for i in 0..3 {
            let v = describe::variance(&cols[i]);
            assert!((v - m.marginal_variance(i)).abs() < 0.02, "var {i}");
        }
    }
}
