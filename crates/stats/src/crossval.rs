//! Q-fold cross-validation splitting (Fig. 2 of the paper).
//!
//! A `Q`-fold split partitions the `K` sample indices into `Q` disjoint
//! groups. Run `q` holds out group `q` for error estimation and trains
//! on the remaining `Q−1` groups; the per-run errors are averaged into
//! the final error estimate `ε(λ)` used to pick the model order.
//!
//! [`EarlyStopRule`] / [`EarlyStopMonitor`] implement the flattening
//! test the streaming CV driver uses to cut the `λ` exploration short
//! once the cross-fold error curve stops improving.

use crate::rng::NormalSampler;

/// A Q-fold partition of `0..n`.
///
/// # Example
///
/// ```
/// use rsm_stats::QFold;
/// let folds = QFold::new(8, 4).unwrap();
/// assert_eq!(folds.q(), 4);
/// let (train, test) = folds.split(0);
/// assert_eq!(train.len() + test.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct QFold {
    /// `assignment[i]` is the fold that sample `i` belongs to.
    assignment: Vec<usize>,
    q: usize,
}

impl QFold {
    /// Deterministic partition: sample `i` goes to fold `i % q`
    /// (round-robin, so folds differ in size by at most one).
    ///
    /// Returns `None` if `q < 2` or `q > n`.
    pub fn new(n: usize, q: usize) -> Option<Self> {
        if q < 2 || q > n {
            return None;
        }
        Some(QFold {
            assignment: (0..n).map(|i| i % q).collect(),
            q,
        })
    }

    /// Randomly shuffled partition (recommended when the sample order
    /// carries structure).
    ///
    /// Returns `None` if `q < 2` or `q > n`.
    pub fn shuffled(n: usize, q: usize, sampler: &mut NormalSampler) -> Option<Self> {
        let mut folds = Self::new(n, q)?;
        sampler.shuffle(&mut folds.assignment);
        Some(folds)
    }

    /// Number of folds.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` if the partition covers zero samples (never constructed
    /// by [`Self::new`], provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Train/test index lists for run `fold` (test = samples assigned
    /// to `fold`).
    ///
    /// # Panics
    ///
    /// Panics if `fold >= q`.
    pub fn split(&self, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.q, "fold {fold} out of range (q = {})", self.q);
        let mut train = Vec::with_capacity(self.len());
        let mut test = Vec::with_capacity(self.len() / self.q + 1);
        for (i, &a) in self.assignment.iter().enumerate() {
            if a == fold {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        (train, test)
    }

    /// Iterates over all `(train, test)` splits.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..self.q).map(move |f| self.split(f))
    }
}

/// When to stop walking the cross-validation error curve `ε(λ)`.
///
/// The curve is observed one `λ` at a time (in increasing order); the
/// walk stops once `patience` consecutive observations fail to improve
/// on the best error seen so far by at least a relative
/// `min_rel_improvement`. The decision depends only on the observed
/// error sequence — never on timing or worker count — so early-stopped
/// runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopRule {
    /// Number of consecutive non-improving observations tolerated
    /// before stopping.
    pub patience: usize,
    /// An observation counts as an improvement only if it is below
    /// `best · (1 − min_rel_improvement)`.
    pub min_rel_improvement: f64,
}

impl EarlyStopRule {
    /// Practical defaults: stop after 3 flat observations, requiring
    /// 0.1 % relative improvement to reset the counter.
    pub fn new() -> Self {
        EarlyStopRule {
            patience: 3,
            min_rel_improvement: 1e-3,
        }
    }

    /// Overrides the patience.
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = patience;
        self
    }

    /// Overrides the improvement threshold.
    pub fn with_min_rel_improvement(mut self, thresh: f64) -> Self {
        self.min_rel_improvement = thresh;
        self
    }
}

impl Default for EarlyStopRule {
    fn default() -> Self {
        Self::new()
    }
}

/// Stateful observer applying an [`EarlyStopRule`] to a sequence of
/// error observations.
#[derive(Debug, Clone)]
pub struct EarlyStopMonitor {
    rule: EarlyStopRule,
    best: f64,
    best_index: usize,
    observed: usize,
    since_best: usize,
}

impl EarlyStopMonitor {
    /// A fresh monitor; nothing observed yet.
    pub fn new(rule: EarlyStopRule) -> Self {
        EarlyStopMonitor {
            rule,
            best: f64::INFINITY,
            best_index: 0,
            observed: 0,
            since_best: 0,
        }
    }

    /// Feeds the next error observation; returns `true` when the walk
    /// should stop (the curve has been flat for `patience` steps).
    ///
    /// Non-finite observations never count as improvements.
    pub fn observe(&mut self, err: f64) -> bool {
        // Any finite error beats an infinite `best`, so the first
        // finite observation always resets the counter.
        let improved = err.is_finite() && err < self.best * (1.0 - self.rule.min_rel_improvement);
        if improved {
            self.best = err;
            self.best_index = self.observed;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        self.observed += 1;
        self.since_best >= self.rule.patience
    }

    /// Best (smallest finite) error observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// 0-based index of the best observation.
    pub fn best_index(&self) -> usize {
        self.best_index
    }

    /// Number of observations fed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(QFold::new(10, 1).is_none());
        assert!(QFold::new(3, 4).is_none());
        assert!(QFold::new(0, 2).is_none());
        assert!(QFold::new(4, 4).is_some());
    }

    #[test]
    fn folds_partition_everything_exactly_once() {
        let folds = QFold::new(103, 4).unwrap();
        let mut seen = HashSet::new();
        for (_, test) in folds.splits() {
            for i in test {
                assert!(seen.insert(i), "index {i} in two folds");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        let folds = QFold::new(20, 5).unwrap();
        for (train, test) in folds.splits() {
            let tr: HashSet<_> = train.iter().collect();
            assert!(test.iter().all(|i| !tr.contains(i)));
            assert_eq!(train.len() + test.len(), 20);
        }
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = QFold::new(10, 4).unwrap();
        let sizes: Vec<usize> = (0..4).map(|f| folds.split(f).1.len()).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1, "{sizes:?}");
    }

    #[test]
    fn four_fold_matches_paper_figure() {
        // Fig. 2: 4 groups, 4 runs, each run holds out exactly one group.
        let folds = QFold::new(400, 4).unwrap();
        assert_eq!(folds.q(), 4);
        for f in 0..4 {
            let (train, test) = folds.split(f);
            assert_eq!(test.len(), 100);
            assert_eq!(train.len(), 300);
        }
    }

    #[test]
    fn shuffled_is_still_a_partition() {
        let mut s = NormalSampler::seed_from_u64(11);
        let folds = QFold::shuffled(57, 3, &mut s).unwrap();
        let mut seen = HashSet::new();
        for (_, test) in folds.splits() {
            for i in test {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(seen.len(), 57);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_out_of_range_panics() {
        let folds = QFold::new(10, 2).unwrap();
        let _ = folds.split(2);
    }

    #[test]
    fn early_stop_fires_after_patience_flat_steps() {
        let mut m = EarlyStopMonitor::new(EarlyStopRule::new().with_patience(2));
        assert!(!m.observe(1.0));
        assert!(!m.observe(0.5)); // improvement resets
        assert!(!m.observe(0.5001)); // flat 1
        assert!(m.observe(0.52)); // flat 2 → stop
        assert_eq!(m.best_index(), 1);
        assert!((m.best() - 0.5).abs() < 1e-12);
        assert_eq!(m.observed(), 4);
    }

    #[test]
    fn early_stop_requires_relative_improvement() {
        // A 0.01% improvement does not reset a 1%-threshold monitor.
        let rule = EarlyStopRule::new()
            .with_patience(1)
            .with_min_rel_improvement(0.01);
        let mut m = EarlyStopMonitor::new(rule);
        assert!(!m.observe(1.0));
        assert!(m.observe(0.9999));
    }

    #[test]
    fn early_stop_ignores_non_finite_errors() {
        let mut m = EarlyStopMonitor::new(EarlyStopRule::new().with_patience(3));
        assert!(!m.observe(f64::INFINITY));
        assert!(!m.observe(f64::NAN));
        assert!(!m.observe(0.7)); // first finite → best
        assert!((m.best() - 0.7).abs() < 1e-12);
        assert_eq!(m.best_index(), 2);
    }

    #[test]
    fn early_stop_never_fires_on_steady_improvement() {
        let mut m = EarlyStopMonitor::new(EarlyStopRule::new().with_patience(1));
        let mut err = 1.0;
        for _ in 0..50 {
            assert!(!m.observe(err));
            err *= 0.9;
        }
    }
}
