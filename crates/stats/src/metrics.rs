//! Modeling-error metrics.
//!
//! The paper reports "modeling error" as a percentage (e.g. 4.09% for
//! the SRAM read delay in Table IV). We follow the standard convention
//! of that literature: the L2 norm of the prediction residual on an
//! independent testing set, normalized by the L2 norm of the *variation*
//! of the true response (its deviation from the mean), so that a model
//! predicting only the mean scores 100%.

use crate::describe;
use rsm_linalg::tol;

/// Relative root-mean-square error against the variation magnitude:
///
/// `ε = ‖pred − truth‖₂ / ‖truth − mean(truth)‖₂`
///
/// This is the paper's "modeling error". Returns `f64::INFINITY` when
/// the true response has no variation but the residual is nonzero, and
/// `0.0` when both are zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "relative_error: length mismatch");
    let m = describe::mean(truth);
    let mut num = 0.0;
    let mut den = 0.0;
    for (p, t) in pred.iter().zip(truth) {
        num += (p - t) * (p - t);
        den += (t - m) * (t - m);
    }
    if tol::exactly_zero(den) {
        if tol::exactly_zero(num) {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Plain root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (s / pred.len() as f64).sqrt()
}

/// Maximum absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "max_abs_error: length mismatch");
    pred.iter()
        .zip(truth)
        .fold(0.0f64, |m, (p, t)| m.max((p - t).abs()))
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// Returns `f64::NEG_INFINITY`-free results: if the truth has zero
/// variance, returns `1.0` when residuals are zero and `0.0` otherwise.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    let e = relative_error(pred, truth);
    if e.is_infinite() {
        0.0
    } else {
        1.0 - e * e
    }
}

/// Mean absolute percentage error `mean(|pred−truth| / |truth|)`,
/// skipping points where `truth == 0`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mape: length mismatch");
    let mut s = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if !tol::exactly_zero(*t) {
            s += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(relative_error(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(max_abs_error(&t, &t), 0.0);
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-15);
        assert_eq!(mape(&t, &t), 0.0);
    }

    #[test]
    fn mean_only_model_scores_one() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [2.5; 4];
        assert!((relative_error(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!(r_squared(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        let pred = [1.0, 2.0];
        let truth = [0.0, 0.0];
        assert!((rmse(&pred, &truth) - (2.5f64).sqrt()).abs() < 1e-15);
        assert!((max_abs_error(&pred, &truth) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn degenerate_truth() {
        let truth = [5.0, 5.0];
        assert_eq!(relative_error(&truth, &truth), 0.0);
        assert!(relative_error(&[5.0, 6.0], &truth).is_infinite());
        assert_eq!(r_squared(&[5.0, 6.0], &truth), 0.0);
    }

    #[test]
    fn mape_skips_zeros() {
        let pred = [2.0, 1.0];
        let truth = [0.0, 2.0];
        assert!((mape(&pred, &truth) - 0.5).abs() < 1e-15);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
