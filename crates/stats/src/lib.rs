//! Statistics substrate for the `sparse-rsm` workspace.
//!
//! Provides everything the modeling pipeline needs around the solvers:
//!
//! - [`rng`] — deterministic standard-normal sampling (Marsaglia polar
//!   method over a seedable PRNG), since the paper draws its sampling
//!   points from the joint PDF of the post-PCA variables;
//! - [`describe`] — descriptive statistics and empirical quantiles;
//! - [`metrics`] — the relative modeling-error measures reported in the
//!   paper's figures and tables;
//! - [`pca`] — principal component analysis / whitening of correlated
//!   jointly-normal process parameters (Section II of the paper);
//! - [`factor`] — factor-form Gaussian models `Σ = L·Lᵀ + D` that scale
//!   to the paper's 21 310-variable SRAM example without ever forming a
//!   dense covariance;
//! - [`crossval`] — the Q-fold cross-validation splitter of Fig. 2;
//! - [`lhs`] — Latin hypercube sampling in normal space (plus the
//!   inverse normal CDF), used by the sampling-strategy ablation;
//! - [`kstest`] — two-sample Kolmogorov–Smirnov comparison for
//!   validating model-predicted performance distributions.

// Numerical kernels index several parallel arrays inside one loop;
// iterator-zip rewrites obscure the math, so the range-loop lint is
// disabled crate-wide.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod crossval;
pub mod describe;
pub mod factor;
pub mod kstest;
pub mod lhs;
pub mod metrics;
pub mod pca;
pub mod rng;

pub use crossval::{EarlyStopMonitor, EarlyStopRule, QFold};
pub use factor::FactorModel;
pub use pca::Pca;
pub use rng::NormalSampler;
