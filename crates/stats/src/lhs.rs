//! Latin hypercube sampling (LHS) in the standard-normal space.
//!
//! The paper deliberately replaces classical design-of-experiments
//! sampling with plain Monte-Carlo draws from `pdf(ΔY)` so that the
//! inner-product estimator of Eq. (14) is unbiased. LHS is the natural
//! middle ground — still random, but stratified per coordinate — and
//! the `sampling_ablation` experiment quantifies what it buys at the
//! paper's sample counts. The normal-space mapping needs the inverse
//! normal CDF, implemented here (Acklam's rational approximation,
//! |relative error| < 1.2e-9).

use crate::rng::NormalSampler;
use rsm_linalg::tol;
use rsm_linalg::Matrix;

/// Inverse CDF (quantile function) of the standard normal
/// distribution, `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Uses Peter Acklam's rational approximation with one Halley
/// refinement step; absolute error below 1e-12 across the open unit
/// interval. Returns `±∞` at `p ∈ {0, 1}` and NaN outside `[0, 1]`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if tol::exactly_zero(p) {
        return f64::NEG_INFINITY;
    }
    if tol::exactly_eq(p, 1.0) {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the forward CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal CDF `Φ(x)` via the complementary error function
/// (Abramowitz–Stegun 7.1.26-style rational approximation refined for
/// double precision using symmetry).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc_scaled(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// `erfc(x)` with ~1e-15 accuracy (Cody-style rational kernels).
fn erfc_scaled(x: f64) -> f64 {
    // Use the symmetric relation for negative arguments.
    if x < 0.0 {
        return 2.0 - erfc_scaled(-x);
    }
    // Series for small x: erf(x) converges quickly.
    if x < 2.0 {
        // erf(x) = 2/√π Σ (−1)ⁿ x^{2n+1} / (n!(2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0usize;
        // Relative series truncation, two decades under f64 epsilon so
        // the truncated tail is invisible in the rounded sum.
        const SERIES_REL_TOL: f64 = 1e-18;
        while term.abs() > SERIES_REL_TOL * sum.abs() && n < 200 {
            n += 1;
            term *= -x2 / n as f64;
            sum += term / (2 * n + 1) as f64;
        }
        1.0 - 2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // Continued fraction for the tail.
        let mut cf = 0.0;
        for k in (1..=60).rev() {
            cf = 0.5 * k as f64 / (x + cf);
        }
        (-x * x).exp() / ((x + cf) * std::f64::consts::PI.sqrt())
    }
}

/// Draws a `k × n` Latin hypercube sample in standard-normal space:
/// each column is stratified into `k` equal-probability bins with one
/// point per bin (uniform within the bin), independently permuted per
/// column, then mapped through `Φ⁻¹`.
pub fn latin_hypercube_normal(k: usize, n: usize, sampler: &mut NormalSampler) -> Matrix {
    let mut out = Matrix::zeros(k, n);
    let mut perm: Vec<usize> = (0..k).collect();
    for c in 0..n {
        sampler.shuffle(&mut perm);
        for (r, &stratum) in perm.iter().enumerate() {
            let u = (stratum as f64 + sampler.uniform()) / k as f64;
            out[(r, c)] = inverse_normal_cdf(u.clamp(1e-15, 1.0 - 1e-15));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;

    #[test]
    fn inverse_cdf_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-12);
        // Φ⁻¹(0.975) ≈ 1.959964
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        // Φ⁻¹(0.8413…) ≈ 1 (one sigma)
        assert!((inverse_normal_cdf(0.841344746) - 1.0).abs() < 1e-6);
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_nan());
    }

    #[test]
    fn cdf_and_inverse_are_mutual_inverses() {
        for &p in &[1e-8, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-6] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-10, "p={p}: back={back}");
        }
        for &x in &[-6.0, -2.0, -0.5, 0.0, 0.5, 2.0, 6.0] {
            let p = normal_cdf(x);
            let back = inverse_normal_cdf(p);
            assert!((back - x).abs() < 1e-7, "x={x}: back={back}");
        }
    }

    #[test]
    fn cdf_symmetry_and_monotone() {
        for &x in &[0.1, 0.7, 1.3, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-14);
        }
        let mut last = 0.0;
        for i in 1..100 {
            let v = normal_cdf(-5.0 + 0.1 * i as f64);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn lhs_is_stratified_per_column() {
        let mut s = NormalSampler::seed_from_u64(9);
        let k = 64;
        let m = latin_hypercube_normal(k, 3, &mut s);
        for c in 0..3 {
            // Mapping back through Φ must give exactly one point per
            // stratum [i/k, (i+1)/k).
            let mut hit = vec![false; k];
            for r in 0..k {
                let u = normal_cdf(m[(r, c)]);
                let bin = ((u * k as f64) as usize).min(k - 1);
                assert!(!hit[bin], "two points in stratum {bin} of column {c}");
                hit[bin] = true;
            }
            assert!(hit.iter().all(|&h| h));
        }
    }

    #[test]
    fn lhs_has_tighter_moments_than_mc() {
        // Variance of the sample mean is much smaller under LHS.
        let trials = 200;
        let k = 50;
        let mut mc_means = Vec::new();
        let mut lhs_means = Vec::new();
        let mut s = NormalSampler::seed_from_u64(31);
        for _ in 0..trials {
            let mc: Vec<f64> = s.sample_vec(k);
            mc_means.push(describe::mean(&mc));
            let l = latin_hypercube_normal(k, 1, &mut s);
            lhs_means.push(describe::mean(&l.col(0)));
        }
        let v_mc = describe::variance(&mc_means);
        let v_lhs = describe::variance(&lhs_means);
        assert!(
            v_lhs < v_mc / 10.0,
            "LHS mean-variance {v_lhs} not ≪ MC {v_mc}"
        );
    }

    #[test]
    fn lhs_columns_are_independent_ish() {
        let mut s = NormalSampler::seed_from_u64(4);
        let m = latin_hypercube_normal(500, 2, &mut s);
        let rho = describe::correlation(&m.col(0), &m.col(1));
        assert!(rho.abs() < 0.1, "column correlation {rho}");
    }
}
