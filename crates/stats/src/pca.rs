//! Principal component analysis of correlated jointly-normal process
//! parameters (Section II of the paper).
//!
//! Given `ΔX ~ N(0, Σ)`, PCA finds `Σ = V·diag(λ)·Vᵀ` and the
//! whitening map `ΔY = diag(λ)^{-1/2}·Vᵀ·ΔX`, producing independent
//! standard-normal factors `ΔY`. The inverse (coloring) map
//! `ΔX = V·diag(λ)^{1/2}·ΔY` is what the sampling pipeline uses to
//! drive the circuit simulator from independent factors.

use rsm_linalg::eig::SymmetricEigen;
use rsm_linalg::{LinalgError, Matrix};

use crate::rng::NormalSampler;

/// A PCA / whitening transform derived from a covariance matrix.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues in descending order, truncated to the retained rank.
    eigenvalues: Vec<f64>,
    /// `N × r` matrix of retained principal directions (columns).
    components: Matrix,
    n: usize,
}

impl Pca {
    /// Computes PCA from a covariance matrix, retaining components with
    /// eigenvalue above `rel_tol · λ_max` (pass `0.0` to keep all
    /// non-negative components).
    ///
    /// # Errors
    ///
    /// - Propagates eigensolver errors ([`LinalgError::ShapeMismatch`],
    ///   [`LinalgError::NoConvergence`]);
    /// - [`LinalgError::NotPositiveDefinite`] if the most negative
    ///   eigenvalue is materially negative (beyond round-off), i.e. the
    ///   input is not a covariance matrix.
    pub fn from_covariance(cov: &Matrix, rel_tol: f64) -> Result<Self, LinalgError> {
        let eig = SymmetricEigen::new(cov)?;
        let lam = eig.eigenvalues();
        let n = cov.rows();
        let lmax = lam.first().copied().unwrap_or(0.0).max(0.0);
        if let Some(&lmin) = lam.last() {
            if lmin < -1e-8 * lmax.max(1.0) {
                return Err(LinalgError::NotPositiveDefinite { index: n - 1 });
            }
        }
        let thresh = (rel_tol * lmax).max(0.0);
        let r = lam.iter().filter(|&&l| l > thresh).count().max(1);
        let keep: Vec<usize> = (0..r).collect();
        Ok(Pca {
            eigenvalues: lam[..r].to_vec(),
            components: eig.eigenvectors().select_cols(&keep),
            n,
        })
    }

    /// Computes PCA from data rows (one sample per row) by forming the
    /// sample covariance about the sample mean.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if fewer than two
    /// samples are supplied; otherwise as [`Self::from_covariance`].
    pub fn from_samples(data: &Matrix, rel_tol: f64) -> Result<Self, LinalgError> {
        let (k, n) = data.shape();
        if k < 2 {
            return Err(LinalgError::InvalidArgument(
                "PCA needs at least two samples".into(),
            ));
        }
        let mut means = vec![0.0; n];
        for r in 0..k {
            for (j, m) in means.iter_mut().enumerate() {
                *m += data[(r, j)];
            }
        }
        for m in &mut means {
            *m /= k as f64;
        }
        let mut cov = Matrix::zeros(n, n);
        for r in 0..k {
            let row = data.row(r);
            for i in 0..n {
                let di = row[i] - means[i];
                for j in i..n {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = (k - 1) as f64;
        for i in 0..n {
            for j in i..n {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        Self::from_covariance(&cov, rel_tol)
    }

    /// Input dimension `N`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.n
    }

    /// Retained latent dimension `r ≤ N`.
    #[inline]
    pub fn latent_dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Retained eigenvalues (variances along principal directions),
    /// descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Retained principal directions as columns of an `N × r` matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Fraction of total variance captured by the first `r'` components,
    /// for each `r' = 1..=r`.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        let mut acc = 0.0;
        self.eigenvalues
            .iter()
            .map(|&l| {
                acc += l;
                if total > 0.0 {
                    acc / total
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Whitens a (zero-mean) parameter vector:
    /// `ΔY = diag(λ)^{-1/2} Vᵀ ΔX`.
    ///
    /// # Panics
    ///
    /// Panics if `dx.len() != N`.
    pub fn whiten(&self, dx: &[f64]) -> Vec<f64> {
        assert_eq!(dx.len(), self.n, "whiten: dimension mismatch");
        let r = self.latent_dim();
        let mut y = vec![0.0; r];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for i in 0..self.n {
                s += self.components[(i, j)] * dx[i];
            }
            *yj = s / self.eigenvalues[j].sqrt();
        }
        y
    }

    /// Colors an independent standard-normal factor vector back into
    /// parameter space: `ΔX = V diag(λ)^{1/2} ΔY`.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != latent_dim()`.
    pub fn color(&self, dy: &[f64]) -> Vec<f64> {
        let r = self.latent_dim();
        assert_eq!(dy.len(), r, "color: dimension mismatch");
        let mut x = vec![0.0; self.n];
        for (j, &yj) in dy.iter().enumerate() {
            let s = self.eigenvalues[j].sqrt() * yj;
            for (i, xi) in x.iter_mut().enumerate() {
                *xi += self.components[(i, j)] * s;
            }
        }
        x
    }

    /// Draws one correlated parameter sample `ΔX` by coloring an
    /// independent standard-normal draw.
    pub fn sample(&self, sampler: &mut NormalSampler) -> Vec<f64> {
        let dy = sampler.sample_vec(self.latent_dim());
        self.color(&dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;

    fn toy_cov() -> Matrix {
        // 3-var covariance with strong correlation between vars 0 and 1.
        Matrix::from_rows(&[&[2.0, 1.2, 0.0], &[1.2, 1.0, 0.0], &[0.0, 0.0, 0.5]]).unwrap()
    }

    #[test]
    fn whiten_color_roundtrip() {
        let pca = Pca::from_covariance(&toy_cov(), 0.0).unwrap();
        let dy = [0.3, -1.2, 2.0];
        let dx = pca.color(&dy);
        let back = pca.whiten(&dx);
        for (a, b) in back.iter().zip(&dy) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn colored_samples_have_target_covariance() {
        let cov = toy_cov();
        let pca = Pca::from_covariance(&cov, 0.0).unwrap();
        let mut s = NormalSampler::seed_from_u64(77);
        let k = 60_000;
        let mut acc = Matrix::zeros(3, 3);
        for _ in 0..k {
            let x = pca.sample(&mut s);
            for i in 0..3 {
                for j in 0..3 {
                    acc[(i, j)] += x[i] * x[j];
                }
            }
        }
        acc.scale(1.0 / k as f64);
        assert!(acc.max_abs_diff(&cov).unwrap() < 0.05);
    }

    #[test]
    fn whitened_factors_are_uncorrelated_standard() {
        let pca = Pca::from_covariance(&toy_cov(), 0.0).unwrap();
        let mut s = NormalSampler::seed_from_u64(5);
        let k = 40_000;
        let mut y0 = Vec::with_capacity(k);
        let mut y1 = Vec::with_capacity(k);
        for _ in 0..k {
            let x = pca.sample(&mut s);
            let y = pca.whiten(&x);
            y0.push(y[0]);
            y1.push(y[1]);
        }
        assert!((describe::variance(&y0) - 1.0).abs() < 0.05);
        assert!((describe::variance(&y1) - 1.0).abs() < 0.05);
        assert!(describe::correlation(&y0, &y1).abs() < 0.03);
    }

    #[test]
    fn eigenvalues_descending_and_sum_to_trace() {
        let cov = toy_cov();
        let pca = Pca::from_covariance(&cov, 0.0).unwrap();
        let lam = pca.eigenvalues();
        for w in lam.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let tr = 2.0 + 1.0 + 0.5;
        assert!((lam.iter().sum::<f64>() - tr).abs() < 1e-10);
    }

    #[test]
    fn rank_truncation_drops_null_directions() {
        // Rank-1 covariance: x0 = x1 exactly.
        let cov = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let pca = Pca::from_covariance(&cov, 1e-10).unwrap();
        assert_eq!(pca.latent_dim(), 1);
        assert!((pca.eigenvalues()[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn explained_variance_monotone_to_one() {
        let pca = Pca::from_covariance(&toy_cov(), 0.0).unwrap();
        let ratios = pca.explained_variance_ratio();
        for w in ratios.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((ratios.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_covariance_rejected() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            Pca::from_covariance(&m, 0.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn from_samples_recovers_structure() {
        // Generate samples from a known covariance, re-estimate by PCA.
        let cov = toy_cov();
        let gen = Pca::from_covariance(&cov, 0.0).unwrap();
        let mut s = NormalSampler::seed_from_u64(31);
        let k = 20_000;
        let data = Matrix::from_fn(k, 3, |_, _| 0.0);
        let mut data = data;
        for r in 0..k {
            let x = gen.sample(&mut s);
            data.row_mut(r).copy_from_slice(&x);
        }
        let est = Pca::from_samples(&data, 0.0).unwrap();
        let lam_true = gen.eigenvalues();
        let lam_est = est.eigenvalues();
        for (t, e) in lam_true.iter().zip(lam_est) {
            assert!((t - e).abs() < 0.08, "{t} vs {e}");
        }
    }

    #[test]
    fn from_samples_needs_two_rows() {
        let data = Matrix::zeros(1, 3);
        assert!(Pca::from_samples(&data, 0.0).is_err());
    }
}
