//! Descriptive statistics for performance-distribution reporting.

use rsm_linalg::tol;

/// Arithmetic mean (`0.0` for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance about the sample mean (`0.0` for fewer than two
/// points).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (third standardized moment); `0.0` if degenerate.
pub fn skewness(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if tol::exactly_zero(s) || xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / xs.len() as f64
}

/// Excess kurtosis (fourth standardized moment minus 3); `0.0` if
/// degenerate.
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if tol::exactly_zero(s) || xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / xs.len() as f64 - 3.0
}

/// Empirical quantile by linear interpolation of the sorted sample.
///
/// `q` is clamped to `[0, 1]`. Returns `f64::NAN` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Minimum and maximum of the sample. Returns `None` for empty input.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    /// Samples below `lo` / above `hi`.
    outside: usize,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize, xs: &[f64]) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        let mut counts = vec![0usize; bins];
        let mut outside = 0usize;
        let w = (hi - lo) / bins as f64;
        for &x in xs {
            if x < lo || x > hi || !x.is_finite() {
                outside += 1;
                continue;
            }
            let mut b = ((x - lo) / w) as usize;
            if b >= bins {
                b = bins - 1; // x == hi lands in the last bin
            }
            counts[b] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            outside,
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of samples outside `[lo, hi]`.
    pub fn outside(&self) -> usize {
        self.outside
    }

    /// Center of bin `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (b as f64 + 0.5) * w
    }
}

/// Pearson correlation coefficient of two equally-long samples;
/// `0.0` if either is degenerate.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation: length mismatch");
    let (sx, sy) = (std_dev(xs), std_dev(ys));
    if tol::exactly_zero(sx) || tol::exactly_zero(sy) || xs.is_empty() {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let cov = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64;
    cov / (sx * sy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        assert!((variance(&xs) - 4.0).abs() < 1e-15);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(excess_kurtosis(&[3.0, 3.0]), 0.0);
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-15);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-15);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-15);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-15);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 2.0);
    }

    #[test]
    fn min_max_simple() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
    }

    #[test]
    fn histogram_counts_and_edges() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0, -5.0, 7.0];
        let h = Histogram::new(0.0, 2.0, 4, &xs);
        assert_eq!(h.counts().iter().sum::<usize>(), 5);
        assert_eq!(h.outside(), 2);
        // x == hi lands in the last bin.
        assert_eq!(h.counts()[3], 2); // 1.5 and 2.0
        assert!((h.bin_center(0) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0, &[]);
    }

    #[test]
    fn correlation_of_linear_relation() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let yneg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &yneg) + 1.0).abs() < 1e-12);
    }
}
