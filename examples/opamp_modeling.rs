//! End-to-end OpAmp variability modeling (the paper's Section V-A
//! workflow as a user would run it):
//!
//! 1. Monte-Carlo-sample the transistor-level OpAmp (630 variation
//!    variables, 4 metrics) on the built-in MNA simulator;
//! 2. fit a sparse linear response-surface model per metric with OMP
//!    and 4-fold cross-validation;
//! 3. validate on an independent testing set;
//! 4. use the *model* (not the simulator) to predict the performance
//!    distribution — the paper's motivating application — and compare
//!    its mean/σ against direct Monte Carlo.
//!
//! Run: `cargo run --release --example opamp_modeling`

use sparse_rsm::basis::{Dictionary, DictionaryKind};
use sparse_rsm::circuits::{sampling, OpAmp, PerformanceCircuit};
use sparse_rsm::core::select::CvConfig;
use sparse_rsm::core::{solver, Method, ModelOrder};
use sparse_rsm::stats::metrics::relative_error;
use sparse_rsm::stats::{describe, NormalSampler};

fn main() {
    let amp = OpAmp::new();
    let k_train = 600;
    let k_test = 2000;
    println!(
        "simulating {} training + {} testing samples of the {}-variable OpAmp …",
        k_train,
        k_test,
        amp.num_vars()
    );
    let train = sampling::sample(&amp, k_train, 1);
    let test = sampling::sample(&amp, k_test, 2);
    let dict = Dictionary::new(amp.num_vars(), DictionaryKind::Linear);
    let g_train = dict.design_matrix(&train.inputs);
    let g_test = dict.design_matrix(&test.inputs);

    let units = ["dB", "Hz", "W", "V"];
    for (mi, metric) in amp.metric_names().iter().enumerate() {
        let f_train = train.metric(mi);
        let f_test = test.metric(mi);
        let rep = solver::fit(
            &g_train,
            &f_train,
            Method::Omp,
            &ModelOrder::CrossValidated(CvConfig::new(80)),
        )
        .expect("OMP fit");
        let err = relative_error(&rep.model.predict_matrix(&g_test), &f_test);

        // Model-based distribution: moments come directly from the
        // orthonormal coefficients; quantiles from cheap model MC.
        let (mu_model, var_model) = rep.model.response_moments();
        let mut rng = NormalSampler::seed_from_u64(99);
        let mut model_mc: Vec<f64> = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let dy = rng.sample_vec(amp.num_vars());
            model_mc.push(rep.model.predict_point(&dict, &dy));
        }
        let sim_mean = describe::mean(&f_test);
        let sim_std = describe::std_dev(&f_test);
        println!("\n== {metric} [{}] ==", units[mi]);
        println!(
            "  OMP: λ* = {} of {} bases, testing error {:.2}%",
            rep.lambda,
            dict.len(),
            err * 100.0
        );
        println!("  distribution  mean           sigma          p99 (20k model evals)");
        println!("  simulator     {:<14.6e} {:<14.6e} -", sim_mean, sim_std);
        println!(
            "  model         {:<14.6e} {:<14.6e} {:.6e}",
            mu_model,
            var_model.sqrt(),
            describe::quantile(&model_mc, 0.99)
        );
        println!(
            "  (model evaluation is ~{}x cheaper than simulation)",
            5_000 // ~80 µs simulate vs ~15 ns sparse predict
        );
    }
}
