//! Quick start: solve an underdetermined modeling problem with all
//! four methods and pick the model order by cross-validation.
//!
//! This walks the 2-D intuition of the paper's Fig. 1 first (two basis
//! vectors, OMP picks the more correlated one, residual becomes
//! orthogonal), then a realistic `K ≪ M` recovery with CV.
//!
//! Run: `cargo run --release --example quickstart`

use sparse_rsm::basis::{Dictionary, DictionaryKind};
use sparse_rsm::core::omp::{residual_orthogonality, OmpConfig};
use sparse_rsm::core::select::CvConfig;
use sparse_rsm::core::{solver, Method, ModelOrder};
use sparse_rsm::linalg::Matrix;
use sparse_rsm::stats::metrics::relative_error;
use sparse_rsm::stats::NormalSampler;

fn main() {
    // ---- Fig. 1: the 2-D geometric picture --------------------------------
    println!("-- Fig. 1 walkthrough: F = a1*G1 + a2*G2 in 2-D --");
    let g = Matrix::from_rows(&[&[1.0, 0.6], &[0.0, 0.8]]).unwrap();
    let f = [1.3, 0.4]; // = 1.0*G1 + 0.5*G2
    let path = OmpConfig::new(2).fit(&g, &f).unwrap();
    let first = path.model_at(1);
    println!(
        "step 1 selects basis {} (the one most correlated with F)",
        first.support()[0]
    );
    println!(
        "residual orthogonal to selection: max |cos| = {:.2e}",
        residual_orthogonality(&g, &f, &first)
    );
    let full = path.final_model();
    println!(
        "step 2 recovers a = [{:.3}, {:.3}] exactly\n",
        full.coefficient(0).unwrap_or(0.0),
        full.coefficient(1).unwrap_or(0.0)
    );

    // ---- K << M sparse recovery with cross-validation ----------------------
    let n = 500; // variation variables
    let k = 120; // affordable "simulations"
    let p = 6; // true sparsity
    println!("-- recovering a {p}-sparse model of {n} variables from {k} samples --");
    let mut rng = NormalSampler::seed_from_u64(7);
    let samples = Matrix::from_fn(k, n, |_, _| rng.sample());
    let dict = Dictionary::new(n, DictionaryKind::Linear);
    let g = dict.design_matrix(&samples);
    // Ground truth: constant + 5 informative variables + noise.
    let truth: [(usize, f64); 6] = [
        (0, 3.0),
        (17, 1.5),
        (101, -2.0),
        (256, 0.8),
        (257, -0.6),
        (499, 1.1),
    ];
    let f: Vec<f64> = (0..k)
        .map(|r| truth.iter().map(|&(j, c)| c * g[(r, j)]).sum::<f64>() + 0.05 * rng.sample())
        .collect();

    for method in [Method::Star, Method::Lar, Method::Omp] {
        let order = ModelOrder::CrossValidated(CvConfig::new(25));
        let rep = solver::fit(&g, &f, method, &order).expect("fit");
        let err = relative_error(&rep.model.predict_matrix(&g), &f);
        println!(
            "{:>5}: cross-validated λ = {:>2}, in-sample error {:>6.2}%, support {:?}",
            rep.method.name(),
            rep.lambda,
            err * 100.0,
            rep.model.support()
        );
    }
    println!(
        "\ntrue support: {:?}",
        truth.iter().map(|&(j, _)| j).collect::<Vec<_>>()
    );
    println!("LS would need K >= {} samples — 4x what we used.", n + 1);
}
