//! RF extension: variability modeling of a 2.4 GHz cascode LNA — the
//! "RF" half of the paper's "Analog/RF" scope, exercising the
//! simulator's inductors and resonance measurements.
//!
//! Run: `cargo run --release --example rf_lna`

use sparse_rsm::basis::{Dictionary, DictionaryKind};
use sparse_rsm::circuits::{sampling, Lna, PerformanceCircuit};
use sparse_rsm::core::select::CvConfig;
use sparse_rsm::core::{solver, Method, ModelOrder};
use sparse_rsm::stats::describe;
use sparse_rsm::stats::metrics::relative_error;

fn main() {
    let lna = Lna::new();
    let k_train = 300;
    let k_test = 1200;
    println!(
        "simulating {k_train} + {k_test} samples of the {}-variable LNA …",
        lna.num_vars()
    );
    let train = sampling::sample(&lna, k_train, 7);
    let test = sampling::sample(&lna, k_test, 8);
    let dict = Dictionary::new(lna.num_vars(), DictionaryKind::Linear);
    let g_train = dict.design_matrix(&train.inputs);
    let g_test = dict.design_matrix(&test.inputs);

    println!(
        "\n{:<14}{:>10}{:>10}{:>10}{:>8}  nominal stats",
        "metric", "STAR", "LAR", "OMP", "λ(OMP)"
    );
    for (mi, metric) in lna.metric_names().iter().enumerate() {
        let f_train = train.metric(mi);
        let f_test = test.metric(mi);
        print!("{metric:<14}");
        let mut omp_lambda = 0;
        for method in [Method::Star, Method::Lar, Method::Omp] {
            let rep = solver::fit(
                &g_train,
                &f_train,
                method,
                &ModelOrder::CrossValidated(CvConfig::new(40)),
            )
            .expect("fit");
            let err = relative_error(&rep.model.predict_matrix(&g_test), &f_test);
            print!("{:>9.2}%", err * 100.0);
            if method == Method::Omp {
                omp_lambda = rep.lambda;
            }
        }
        println!(
            "{:>8}  mean {:.4e}, sigma {:.3e}",
            omp_lambda,
            describe::mean(&f_test),
            describe::std_dev(&f_test)
        );
    }
    println!(
        "\nThe RF metrics hinge on the tank passives and M1: the sparse\n\
         models concentrate their weight on those few variables out of 220."
    );
}
