//! Solver shootout on controlled synthetic problems: how the four
//! methods behave as sparsity, noise and sample count vary.
//!
//! This is the "know your tool" companion to the circuit examples —
//! the regimes where OMP's re-fit wins, where LAR's L1 path is
//! competitive, and where STAR's greedy coefficients break down.
//!
//! Run: `cargo run --release --example solver_shootout`

use sparse_rsm::core::{solver, Method, ModelOrder};
use sparse_rsm::linalg::Matrix;
use sparse_rsm::stats::metrics::relative_error;
use sparse_rsm::stats::NormalSampler;

/// Builds a `k × m` Gaussian dictionary and a `p`-sparse response with
/// the given noise level. Returns `(G, F, G_test, F_test)`.
fn problem(
    k: usize,
    m: usize,
    p: usize,
    noise: f64,
    seed: u64,
) -> (Matrix, Vec<f64>, Matrix, Vec<f64>) {
    let mut rng = NormalSampler::seed_from_u64(seed);
    let truth: Vec<(usize, f64)> = (0..p)
        .map(|i| ((i * m / p + 11) % m, if i % 2 == 0 { 2.0 } else { -1.5 }))
        .collect();
    let gen = |k: usize, rng: &mut NormalSampler| {
        let g = Matrix::from_fn(k, m, |_, _| rng.sample());
        let f: Vec<f64> = (0..k)
            .map(|r| truth.iter().map(|&(j, c)| c * g[(r, j)]).sum::<f64>() + noise * rng.sample())
            .collect();
        (g, f)
    };
    let (g, f) = gen(k, &mut rng);
    let (gt, ft) = gen(2000, &mut rng);
    (g, f, gt, ft)
}

fn row(label: &str, k: usize, m: usize, p: usize, noise: f64, seed: u64) {
    let (g, f, gt, ft) = problem(k, m, p, noise, seed);
    print!("{label:<34}");
    for method in [Method::Star, Method::Lar, Method::LarLasso, Method::Omp] {
        let rep = solver::fit(&g, &f, method, &ModelOrder::Fixed(p)).expect("fit");
        let err = relative_error(&rep.model.predict_matrix(&gt), &ft);
        print!("{:>11.2}%", err * 100.0);
    }
    // LS when possible.
    if k > m {
        let rep = solver::fit(&g, &f, Method::Ls, &ModelOrder::Fixed(0)).expect("LS");
        let err = relative_error(&rep.model.predict_matrix(&gt), &ft);
        println!("{:>11.2}%", err * 100.0);
    } else {
        println!("{:>12}", "n/a (K<M)");
    }
}

fn main() {
    println!(
        "{:<34}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "scenario (K samples, M bases)", "STAR", "LAR", "LAR(lasso)", "OMP", "LS"
    );
    println!("{}", "-".repeat(94));
    row("easy: K=200, M=100, p=5, clean", 200, 100, 5, 0.0, 1);
    row("underdetermined: K=80, M=400", 80, 400, 5, 0.0, 2);
    row("noisy: K=80, M=400, sigma=0.3", 80, 400, 5, 0.3, 3);
    row("denser truth: K=150, M=400, p=25", 150, 400, 25, 0.1, 4);
    row("very wide: K=100, M=5000, p=8", 100, 5000, 8, 0.05, 5);
    row("barely enough: K=40, M=400, p=10", 40, 400, 10, 0.05, 6);
    println!(
        "\nReading guide: all sparse solvers match on easy/clean problems.\n\
         The OMP re-fit pays off as noise and density grow. STAR degrades\n\
         because its coefficients are never re-estimated. LAR at lambda = p\n\
         steps is handicapped on dense truths: its path coefficients are\n\
         L1-shrunk until well past p steps, which is why practitioners give\n\
         it a longer path and cross-validate (as the circuit experiments do).\n\
         Everything breaks at K ~ 4x sparsity (last row) — the O(P log M)\n\
         sample bound of Section IV is not just a formality."
    );
}
