//! Drive the circuit simulator from a SPICE-style netlist: parse,
//! bias, sweep, and measure — no Rust circuit-building code.
//!
//! Run: `cargo run --release --example netlist_sim`

use sparse_rsm::spice::ac::{log_sweep, AcAnalysis};
use sparse_rsm::spice::dc::DcAnalysis;
use sparse_rsm::spice::measure;
use sparse_rsm::spice::parser;

const NETLIST: &str = "\
* two-stage RC-loaded common-source amplifier
V1 vdd 0 DC 1.2
V2 in  0 DC 0.55 AC 1.0
R1 vdd mid 30k
M1 mid in 0 NMOS W=500n L=100n VTH=0.38 KP=250u LAMBDA=0.08
C1 mid 0 50f
R2 vdd out 20k
M2 out mid 0 NMOS W=400n L=100n VTH=0.38 KP=250u LAMBDA=0.08
C2 out 0 100f
.end
";

fn main() {
    println!("netlist:\n{NETLIST}");
    let parsed = parser::parse(NETLIST).expect("parse");
    let mid = parsed.node("mid").expect("node mid");
    let out = parsed.node("out").expect("node out");

    let op = DcAnalysis::default().solve(&parsed.circuit).expect("DC");
    println!(
        "DC operating point: v(mid) = {:.4} V, v(out) = {:.4} V",
        op.voltage(mid),
        op.voltage(out)
    );
    println!(
        "supply current: {:.3} uA",
        op.vsource_current(parsed.vsources["V1"]).abs() * 1e6
    );

    let freqs = log_sweep(1e3, 1e10, 12);
    let sweep = AcAnalysis::default()
        .sweep(&parsed.circuit, &op, &freqs)
        .expect("AC");
    let gain1 = measure::dc_gain(&sweep, mid).unwrap();
    let gain2 = measure::dc_gain(&sweep, out).unwrap();
    println!(
        "\nstage gains: {:.1} dB (mid), {:.1} dB (out, two stages)",
        measure::to_db(gain1),
        measure::to_db(gain2)
    );
    println!(
        "-3 dB bandwidth at out: {:.2} MHz",
        measure::bandwidth_3db(&sweep, out).unwrap() / 1e6
    );
    match measure::unity_gain_freq(&sweep, out) {
        Ok(fu) => println!("unity-gain frequency: {:.2} MHz", fu / 1e6),
        Err(e) => println!("unity-gain frequency: {e}"),
    }
}
