//! SRAM read-delay modeling at the paper's full 21 310-variable scale
//! (Section V-B), including the sparsity analysis of Fig. 6 and a
//! timing-yield application.
//!
//! Run: `cargo run --release --example sram_read_path`

use sparse_rsm::basis::{Dictionary, DictionaryKind};
use sparse_rsm::circuits::{sampling, PerformanceCircuit, SramReadPath};
use sparse_rsm::core::select::CvConfig;
use sparse_rsm::core::{solver, Method, ModelOrder};
use sparse_rsm::stats::metrics::relative_error;
use sparse_rsm::stats::{describe, NormalSampler};

fn main() {
    let sram = SramReadPath::paper_scale();
    println!(
        "SRAM read path: {} rows x {} cols, {} independent variation variables",
        sram.rows(),
        sram.cols(),
        sram.num_vars()
    );
    let k_train = 1000;
    let k_test = 2000;
    println!("simulating {k_train} training + {k_test} testing samples …");
    let train = sampling::sample(&sram, k_train, 10);
    let test = sampling::sample(&sram, k_test, 20);
    let dict = Dictionary::new(sram.num_vars(), DictionaryKind::Linear);
    let g_train = dict.design_matrix(&train.inputs);
    let f_train = train.metric(0);
    let f_test = test.metric(0);

    let rep = solver::fit(
        &g_train,
        &f_train,
        Method::Omp,
        &ModelOrder::CrossValidated(CvConfig::new(80)),
    )
    .expect("OMP fit");
    // Sparse prediction: never materialize a test design matrix.
    let pred: Vec<f64> = (0..test.inputs.rows())
        .map(|r| rep.model.predict_point(&dict, test.inputs.row(r)))
        .collect();
    let err = relative_error(&pred, &f_test);
    println!(
        "\nOMP selected {} of {} basis functions (4-fold CV); testing error {:.2}%",
        rep.lambda,
        dict.len(),
        err * 100.0
    );

    // Fig. 6 flavor: where do the selected bases live?
    let mut on_path = 0usize;
    let mut in_accessed_col = 0usize;
    let mut elsewhere = 0usize;
    for &(idx, _) in rep.model.coefficients() {
        if idx == 0 {
            continue; // constant term
        }
        let var = idx - 1;
        if var < 6 || var >= sram.periph_var(0) {
            on_path += 1; // global factor or peripheral device
        } else if var >= sram.cell_var(0, 0) && var < sram.cell_var(0, 1) {
            in_accessed_col += 1;
        } else {
            elsewhere += 1;
        }
    }
    println!(
        "selected-term anatomy: {on_path} global/peripheral, \
         {in_accessed_col} accessed-column cells, {elsewhere} other \
         (of {} candidates, the rest have exactly zero coefficients)",
        dict.len()
    );

    // Application: timing yield at a target cycle constraint.
    let sim_delays = &f_test;
    let mut rng = NormalSampler::seed_from_u64(77);
    let model_delays: Vec<f64> = (0..50_000)
        .map(|_| {
            let dy = rng.sample_vec(sram.num_vars());
            rep.model.predict_point(&dict, &dy)
        })
        .collect();
    let target = describe::quantile(sim_delays, 0.95);
    let yield_sim =
        sim_delays.iter().filter(|&&d| d <= target).count() as f64 / sim_delays.len() as f64;
    let yield_model =
        model_delays.iter().filter(|&&d| d <= target).count() as f64 / model_delays.len() as f64;
    println!(
        "\ntiming-yield check at t_target = {:.1} ps:",
        target * 1e12
    );
    println!(
        "  simulator MC ({} pts):  {:.2}%",
        sim_delays.len(),
        yield_sim * 100.0
    );
    println!(
        "  model MC (50 000 pts):  {:.2}% (model eval ~{} ns vs ~430 us simulate)",
        yield_model * 100.0,
        50
    );
}
