//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `Criterion::benchmark_group` / `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — over a plain wall-clock measurement
//! loop (no statistics engine, no HTML reports).
//!
//! Under `cargo bench` (cargo passes `--bench` to the harness) each
//! benchmark is warmed up and timed for a bounded interval, and the
//! minimum / mean per-iteration times are printed. Under `cargo test`
//! (no `--bench` flag) every benchmark body runs exactly once as a
//! smoke test, keeping the tier-1 suite fast.

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group: a function name, an input
/// parameter, or both.
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name plus a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]. The stub times each
/// routine call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Larger inputs; identical behavior in the stub.
    LargeInput,
    /// One batch per sample; identical behavior in the stub.
    PerIteration,
}

/// Top-level benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes harness=false bench executables with
        // `--bench`; its absence means we are a `cargo test` smoke run.
        Criterion {
            full: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.full, &id.into().label, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix (stub of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's time budget is
    /// fixed, so the sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.criterion.full, &label, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.full, &label, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one(full: bool, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        full,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if full && b.iters > 0 {
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        println!(
            "{label:<50} {:>12} /iter ({} iters)",
            fmt_time(per_iter),
            b.iters
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Per-benchmark timing context handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    full: bool,
    total: Duration,
    iters: u64,
}

/// Wall-clock budget for one benchmark's measurement phase. Bounded so
/// a full `cargo bench` sweep stays in the minutes even with many
/// benchmarks.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

impl Bencher {
    /// Times repeated calls of `routine` (stub of `Bencher::iter`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.full {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget elapses.
        let start = Instant::now();
        while start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
        }
        // Measurement: count iterations inside the time budget.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_BUDGET {
                self.total = elapsed;
                self.iters = iters;
                return;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding the
    /// setup cost (stub of `Bencher::iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.full {
            std::hint::black_box(routine(setup()));
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters;
    }
}

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single runner function (stub of
/// `criterion_group!`; only the positional form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { full: false };
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_and_ids_compose_labels() {
        let id = BenchmarkId::new("omp", 1000);
        assert_eq!(id.label, "omp/1000");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn full_mode_measures_iterations() {
        let mut b = Bencher {
            full: true,
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.iters > 0);
        assert!(b.total >= MEASURE_BUDGET);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion { full: false };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1usize, |b, &_n| {
            b.iter_batched(|| vec![0.0f64; 8], |v| v.len(), BatchSize::SmallInput);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
