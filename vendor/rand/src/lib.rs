//! Offline stand-in for the `rand` crate.
//!
//! The build container for this repository has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! std-only implementations under `vendor/`. This crate covers exactly
//! the `rand 0.9` API surface the workspace uses:
//!
//! - [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded through
//!   SplitMix64 (the reference seeding scheme from Blackman & Vigna);
//! - [`SeedableRng::seed_from_u64`];
//! - [`Rng::random`] for `f64`, `f32`, `u32`, `u64`, `bool`;
//! - [`Rng::random_range`] for integer ranges.
//!
//! The generator passes the statistical checks the repository's test
//! suite applies to it (moment / tail-fraction / KS tests on hundreds
//! of thousands of variates) but the exact stream differs from
//! upstream `rand`'s ChaCha12-based `StdRng`. Everything downstream is
//! seeded explicitly, so reproducibility *within* this repository is
//! unaffected.

pub mod rngs {
    /// A seedable pseudo-random generator (xoshiro256\*\*).
    ///
    /// State must never be all-zero; [`crate::SeedableRng::seed_from_u64`]
    /// guarantees that via SplitMix64 expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sealed helper: types that can be drawn uniformly by [`Rng::random`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types accepted by [`Rng::random_range`].
pub trait RangeSample: Copy + PartialOrd {
    #[doc(hidden)]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                assert!(span > 0, "random_range: empty range");
                // Debiased multiply-shift (Lemire); the rejection loop
                // terminates almost immediately for any span.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < limit {
                        return (lo as i128 + (x % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Draws a value uniformly: floats in `[0, 1)`, integers over their
    /// full range.
    fn random<T: Standard>(&mut self) -> T;

    /// Draws an integer uniformly from `range` (half-open).
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T;
}

impl Rng for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    #[inline]
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.random_range(0usize..7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }
}
