//! Offline stand-in for `serde`.
//!
//! The real serde streams through `Serializer`/`Deserializer` visitor
//! traits; this stub goes through an owned [`Value`] tree instead,
//! which is all the workspace needs (JSON persistence of small model
//! bundles and experiment records). The derive macros re-exported from
//! the vendored `serde_derive` generate impls of these traits.
//!
//! Covered surface:
//!
//! - `#[derive(Serialize, Deserialize)]` on named-field structs;
//! - primitives, `String`, `Option<T>`, `Vec<T>`, 2- and 3-tuples;
//! - `serde_json::{to_string, to_string_pretty, from_str}` (in the
//!   sibling `serde_json` stub, built on [`Value`]).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An owned JSON-shaped value tree — the stub's data model.
///
/// Object fields keep insertion order so serialized output matches the
/// struct declaration order, like real `serde_json` with default
/// features.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2⁵³ are exact).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`] (stub counterpart of
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] (stub counterpart of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting a [`DeError`] on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes an object field — used by the derive
/// macro's generated code.
///
/// # Errors
///
/// Fails if `v` is not an object, the field is absent, or the field's
/// own deserialization fails.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => match v {
            Value::Obj(_) => Err(DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                kind_name(other)
            ))),
        },
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!(
                "expected bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(*n),
            // Non-finite floats serialize as null (as in serde_json);
            // accept the round trip leniently.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError(format!(
                "expected number, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        if n.fract() != 0.0 || !n.is_finite() {
                            return Err(DeError(format!("expected integer, found {n}")));
                        }
                        if *n < <$t>::MIN as f64 || *n > <$t>::MAX as f64 {
                            return Err(DeError(format!(
                                "integer {n} out of range for {}", stringify!($t),
                            )));
                        }
                        Ok(*n as $t)
                    }
                    other => Err(DeError(format!(
                        "expected integer, found {}", kind_name(other),
                    ))),
                }
            }
        }
    )*};
}

impl_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!(
                "expected string, found {}",
                kind_name(other)
            ))),
        }
    }
}

// ---- containers ------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!(
                "expected array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!(
                "expected 2-element array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError(format!(
                "expected 3-element array, found {}",
                kind_name(other)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_get_and_kinds() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }

    #[test]
    fn primitive_roundtrips() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn integer_shape_errors() {
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(usize::from_value(&Value::Num(-1.0)).is_err());
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (9, -2.0)];
        let back = Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let s: Option<f64> = Some(3.0);
        assert_eq!(Option::<f64>::from_value(&s.to_value()).unwrap(), Some(3.0));
    }

    #[test]
    fn missing_field_reports_name() {
        let v = Value::Obj(vec![]);
        let err = field::<usize>(&v, "lambda").unwrap_err();
        assert!(err.to_string().contains("lambda"));
    }
}
