//! Offline stand-in for `proptest`.
//!
//! The real proptest shrinks failing inputs through a value tree; this
//! stub only *generates* random cases (deterministically seeded, so a
//! failure reproduces on re-run) and reports the first failing case
//! without shrinking. That covers what this workspace's property tests
//! need:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] fn ... }`
//! - range strategies (`-1.0f64..1.0`, `0u64..1_000_000`, ...)
//! - `proptest::collection::vec(strategy, len_or_range)`
//! - `.prop_map(...)` and `impl Strategy<Value = T>` helper functions
//! - string strategies from a character-class regex (`"[ -~]{0,60}"`)
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!
//! A failing case panics with the per-case seed; cases are seeded from
//! a fixed stream, so the same binary reproduces the same inputs.

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of random values (stub counterpart of
    /// `proptest::strategy::Strategy`, without shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (stub `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    use rand::Rng;

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + (self.end - self.start) * rng.random::<f64>()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut StdRng) -> f32 {
            self.start + (self.end - self.start) * rng.random::<f32>()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.start..self.end)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// String strategy from a character-class pattern: a sequence of
    /// literal characters or `[...]` classes (with `a-z` ranges), each
    /// optionally followed by `{n}`, `{min,max}`, `*`, `+`, or `?`.
    /// This is the regex subset the workspace's tests use; unsupported
    /// syntax panics at generation time rather than silently producing
    /// the wrong distribution.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pat: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One item: a character class or a (possibly escaped) literal.
            let ranges: Vec<(char, char)> = match chars[i] {
                '[' => {
                    let mut cls = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            cls.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            cls.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [ in pattern {pat:?}");
                    i += 1; // ']'
                    cls
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing \\ in pattern {pat:?}");
                    let c = chars[i + 1];
                    i += 2;
                    vec![(c, c)]
                }
                c if "(){}|^$.*+?".contains(c) => {
                    panic!("regex feature {c:?} not supported by the proptest stub: {pat:?}")
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated { in pattern")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.parse::<usize>().expect("bad {min,max}"),
                                b.parse::<usize>().expect("bad {min,max}"),
                            ),
                            None => {
                                let n = body.parse::<usize>().expect("bad {n}");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let reps = min + rng.random_range(0..(max - min + 1));
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            for _ in 0..reps {
                let mut pick = rng.random_range(0u32..total);
                for &(lo, hi) in &ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick).unwrap());
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count specification for [`vec()`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`] (stub `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (stub: only the case count).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful random cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed; the test panics with this message.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is retried.
        Reject,
    }

    /// Runs `f` until `config.cases` cases pass, panicking on the
    /// first failure. Each attempt gets an rng seeded from a fixed
    /// stream, so failures reproduce exactly on re-run.
    pub fn run_cases<F>(config: ProptestConfig, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let seed = 0xA17E_57EDu64.wrapping_add(attempt);
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected < 16 * config.cases.max(256),
                        "prop_assume! rejected too many cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed (case seed {seed:#x}, after {passed} passing cases): {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies (stub of the `proptest!` macro; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::test_runner::run_cases($cfg, |__proptest_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case with a message (stub of `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn range_strategies_stay_in_bounds(
            x in -2.5f64..1.5,
            n in 3usize..9,
            s in 0u64..1000,
        ) {
            prop_assert!((-2.5..1.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(s < 1000);
        }

        fn vec_strategy_respects_len(
            fixed in crate::collection::vec(0.0f64..1.0, 7),
            ranged in crate::collection::vec(-1.0f64..0.0, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|v| (-1.0..0.0).contains(v)));
        }

        fn prop_map_applies(
            doubled in (1u32..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }

        fn assume_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        fn string_pattern_generates_class(s in "[ -~]{0,60}") {
            prop_assert!(s.len() <= 60);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(-1.0f64..1.0, 3..10);
        let a: Vec<Vec<f64>> = (0..5)
            .map(|i| strat.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        let b: Vec<Vec<f64>> = (0..5)
            .map(|i| strat.generate(&mut StdRng::seed_from_u64(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(4), |_| {
            Err(crate::test_runner::TestCaseError::Fail("boom".into()))
        });
    }
}
