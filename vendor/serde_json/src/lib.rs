//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! stub's [`Value`] tree.
//!
//! Covers `to_string`, `to_string_pretty`, and `from_str` — the three
//! entry points this workspace uses for model bundles and experiment
//! records. Numbers are emitted with Rust's shortest-round-trip float
//! formatting; non-finite floats serialize as `null`, matching real
//! `serde_json`'s arbitrary-precision-off behavior.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for the value model the stub supports; the `Result` is
/// kept for call-site compatibility with real `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
///
/// # Errors
///
/// As [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes `T` from it.
///
/// # Errors
///
/// Reports malformed JSON (with byte offset) or a shape mismatch
/// against `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Reports malformed JSON with the byte offset of the problem.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // Rust's Display for f64 is shortest-round-trip.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (k, fv) = &fields[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, fv, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-1.5", "1e-3", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let back = parse(&{
                let mut s = String::new();
                write_value(&mut s, &v, None, 0);
                s
            })
            .unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs: [f64; 4] = [1.0 / 3.0, 2.2250738585072014e-308, 0.1 + 0.2, -123.456e7];
        for x in xs {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn nested_structure_parses() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert!(matches!(v.get("a"), Some(Value::Arr(items)) if items.len() == 3));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn pretty_output_indents() {
        let v = parse(r#"{"a":[1,2]}"#).unwrap();
        let mut s = String::new();
        write_value(&mut s, &v, Some(2), 0);
        assert!(s.contains("\n  \"a\": [\n    1"), "{s}");
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["{", "[1,", "\"abc", "01x", "{\"a\" 1}", "tru", "[1] x"] {
            assert!(parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
