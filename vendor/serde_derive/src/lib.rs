//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored [`serde`](../serde) stub's value-based
//! `Serialize` / `Deserialize` traits for plain named-field structs —
//! the only shape this workspace derives. Implemented directly on
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline): the input is token-walked to extract the struct name and
//! field names, and the generated impl is assembled as source text and
//! re-parsed.
//!
//! Unsupported shapes (enums, tuple structs, generics, `#[serde]`
//! attributes) produce a `compile_error!` naming the limitation, so a
//! future use of them fails loudly rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Struct name plus field identifiers, extracted from the derive input.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Token-walks a `struct` item, skipping attributes and visibility.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut it = input.into_iter().peekable();
    // Item level: skip #[...] attributes and `pub` / `pub(...)`.
    let name = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match it.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                _ => return Err("expected struct name".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err(
                    "the vendored serde_derive stub only supports structs, not enums".into(),
                );
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "union" => {
                return Err("cannot derive serde traits for a union".into());
            }
            Some(_) => {}
            None => return Err("unexpected end of derive input".into()),
        }
    };
    // Generics are not used by this workspace; reject rather than
    // generate a broken impl.
    let body = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(
                    "the vendored serde_derive stub does not support generic structs".into(),
                );
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(
                    "the vendored serde_derive stub does not support tuple/unit structs".into(),
                );
            }
            Some(_) => {}
            None => return Err("struct body not found".into()),
        }
    };

    // Field level: `#[attrs] vis name : Type ,` — commas nested in
    // parenthesized groups are consumed with their group; explicit
    // depth tracking handles `<`/`>` in type paths.
    let mut fields = Vec::new();
    let mut ft = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match ft.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    ft.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = ft.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            ft.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    if id.to_string().starts_with("r#") {
                        return Err("raw identifiers are not supported by the serde stub".into());
                    }
                    break Some(id.to_string());
                }
                Some(other) => {
                    return Err(format!("unexpected token {other} in struct body"));
                }
                None => break None,
            }
        };
        let Some(field) = field else { break };
        match ft.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected ':' after field `{field}`")),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match ft.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        fields.push(field);
    }
    if fields.is_empty() {
        return Err(format!("struct {name} has no named fields to serialize"));
    }
    Ok(StructShape { name, fields })
}

/// Derives the vendored `serde::Serialize` (value-based) for a
/// named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize` (value-based) for a
/// named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!("{f}: ::serde::field(value, \"{f}\")?,"));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
